// Package simba implements a simplified three-level spatial-accelerator
// analytical model in the spirit of the paper's Simba validation target
// (Fig. 24b/c, Table I): an array of PEs with private register files, a
// shared Global Buffer, and DRAM. It substitutes for the authors'
// Timeloop-Simba model. Every legal Simba mapping corresponds to a
// Snowcat mapping whose buffer is the Global-Buffer footprint, so measured
// DRAM accesses are guaranteed to sit on or above the Orojenesis bound —
// the property the validation experiment demonstrates — while the model's
// extra level and constraints make per-mapping evaluation strictly more
// expensive, reproducing the Table I runtime-comparison shape.
package simba

import (
	"fmt"

	"repro/internal/nest"
	"repro/internal/shape"
)

// Arch describes one Simba-like configuration.
type Arch struct {
	Name        string
	PEs         int64 // spatial parallelism across the M dimension
	RFBytes     int64 // per-PE register file capacity
	GBBytes     int64 // shared Global Buffer capacity
	ElementSize int64
}

// Default returns the baseline configuration used in the validation runs:
// 16 PEs with 512 B register files.
func Default(gbBytes int64) Arch {
	return Arch{
		Name:        fmt.Sprintf("simba-gb%d", gbBytes),
		PEs:         16,
		RFBytes:     512,
		GBBytes:     gbBytes,
		ElementSize: 2,
	}
}

// GEMM is the workload shape the Simba model maps.
type GEMM struct {
	M, K, N int64
}

// MACs returns the workload's multiply-accumulate count.
func (g GEMM) MACs() int64 { return shape.Product(g.M, g.K, g.N) }

// Mapping is one point in the three-level mapspace: each rank is split
// into an RF tile (L0), a Global-Buffer temporal factor (L1) and a DRAM
// loop bound (L2); the M rank is additionally partitioned across PEs by
// Spatial. OrderDRAM gives the DRAM-level loop nest outermost first.
type Mapping struct {
	M0, K0, N0 int64 // RF tiles
	M1, K1, N1 int64 // GB temporal factors
	Spatial    int64 // spatial partitioning of M across PEs (at GB level)
	M2, K2, N2 int64 // DRAM loop bounds
	OrderDRAM  [3]string
}

// Result is the model's evaluation of one mapping.
type Result struct {
	RFBytesUsed     int64
	GBBytesUsed     int64
	DRAMAccessBytes int64
	GBAccessBytes   int64
}

// gbTiles returns the Global-Buffer tile sizes (the live footprint across
// all PEs).
func (m *Mapping) gbTiles() (tm, tk, tn int64) {
	return m.M0 * m.M1 * m.Spatial, m.K0 * m.K1, m.N0 * m.N1
}

// Validate checks the mapping against the workload and architecture.
func (m *Mapping) Validate(g GEMM, a Arch) error {
	if m.M0*m.M1*m.Spatial*m.M2 != g.M {
		return fmt.Errorf("simba: M factors %dx%dx%dx%d != %d", m.M0, m.M1, m.Spatial, m.M2, g.M)
	}
	if m.K0*m.K1*m.K2 != g.K {
		return fmt.Errorf("simba: K factors %dx%dx%d != %d", m.K0, m.K1, m.K2, g.K)
	}
	if m.N0*m.N1*m.N2 != g.N {
		return fmt.Errorf("simba: N factors %dx%dx%d != %d", m.N0, m.N1, m.N2, g.N)
	}
	if m.Spatial > a.PEs {
		return fmt.Errorf("simba: spatial factor %d exceeds %d PEs", m.Spatial, a.PEs)
	}
	if rf := (m.M0*m.K0 + m.K0*m.N0 + m.M0*m.N0) * a.ElementSize; rf > a.RFBytes {
		return fmt.Errorf("simba: RF requirement %d exceeds %d", rf, a.RFBytes)
	}
	tm, tk, tn := m.gbTiles()
	if gb := (tm*tk + tk*tn + tm*tn) * a.ElementSize; gb > a.GBBytes {
		return fmt.Errorf("simba: GB requirement %d exceeds %d", gb, a.GBBytes)
	}
	seen := map[string]bool{}
	for _, r := range m.OrderDRAM {
		if (r != "M" && r != "K" && r != "N") || seen[r] {
			return fmt.Errorf("simba: bad DRAM loop order %v", m.OrderDRAM)
		}
		seen[r] = true
	}
	return nil
}

// tensorNames are the GEMM operands in evaluation order.
var tensorNames = [3]string{"A", "W", "B"}

// relevance of the GEMM operands to each rank.
var relevant = map[string]map[string]bool{
	"A": {"M": true, "K": true, "N": false},
	"W": {"M": false, "K": true, "N": true},
	"B": {"M": true, "K": false, "N": true},
}

// dramBound returns the DRAM-level loop bound of a rank.
func (m *Mapping) dramBound(r string) int64 {
	switch r {
	case "M":
		return m.M2
	case "K":
		return m.K2
	default:
		return m.N2
	}
}

// gbBound returns the combined GB-temporal and DRAM loop bound of a rank —
// the trip count an RF tile sees at the Global-Buffer boundary.
func (m *Mapping) gbBound(r string) int64 {
	switch r {
	case "M":
		return m.M1 * m.M2
	case "K":
		return m.K1 * m.K2
	default:
		return m.N1 * m.N2
	}
}

// Evaluate runs the analytical model. The mapping must be valid. Transfer
// counts at both boundaries instantiate the shared product rule
// (internal/nest) on the mapping's DRAM loop order.
func Evaluate(g GEMM, a Arch, m *Mapping) Result {
	es := a.ElementSize
	tm, tk, tn := m.gbTiles()
	gbFoot := tm*tk + tk*tn + tm*tn
	rfFoot := m.M0*m.K0 + m.K0*m.N0 + m.M0*m.N0

	res := Result{
		RFBytesUsed: rfFoot * es,
		GBBytesUsed: gbFoot * es,
	}

	// DRAM -> GB traffic: GB tiles iterated by the DRAM loop nest.
	var loops [3]nest.Loop
	for i, r := range m.OrderDRAM {
		loops[i] = nest.Loop{Rank: r, Bound: m.dramBound(r)}
	}
	gbTiles := [3]int64{tm * tk, tk * tn, tm * tn} // A, W, B
	for i, tensor := range tensorNames {
		rel := relevant[tensor]
		iters := nest.Iterations(loops[:], func(r string) bool { return rel[r] })
		res.DRAMAccessBytes += gbTiles[i] * iters * es
	}

	// GB -> RF traffic: RF tiles iterated by the GB temporal loops nested
	// inside the DRAM loops. The GB loop order reuses the DRAM order (the
	// model's fixed dataflow). Spatially partitioned tensors (relevant to
	// M) stream per PE; M-irrelevant tensors are broadcast and counted
	// once.
	for i, r := range m.OrderDRAM {
		loops[i] = nest.Loop{Rank: r, Bound: m.gbBound(r)}
	}
	rfTiles := [3]int64{m.M0 * m.K0, m.K0 * m.N0, m.M0 * m.N0} // A, W, B
	for i, tensor := range tensorNames {
		rel := relevant[tensor]
		iters := nest.Iterations(loops[:], func(r string) bool { return rel[r] })
		fanout := int64(1)
		if rel["M"] {
			fanout = m.Spatial
		}
		res.GBAccessBytes += rfTiles[i] * iters * fanout * es
	}
	return res
}
