package simba

import (
	"testing"

	"repro/internal/pareto"
	"repro/internal/shape"
)

// referenceMapspace is a frozen copy of the nested-loop enumerator that
// predates the index-addressable mapspace. It is kept verbatim as the
// parity oracle: the ported enumerator must visit exactly the same
// mappings in exactly the same order, so capacity pruning and
// MappingsEvaluated counts are provably unchanged by the refactor.
func referenceMapspace(g GEMM, a Arch, visit func(*Mapping)) {
	es := a.ElementSize
	var m Mapping

	spatials := []int64{1}
	for _, s := range shape.Divisors(g.M) {
		if s > 1 && s <= a.PEs {
			spatials = append(spatials, s)
		}
	}

	for _, m0 := range shape.Divisors(g.M) {
		for _, k0 := range shape.Divisors(g.K) {
			if (m0*k0)*es > a.RFBytes {
				break // k0 ascending; larger only grows the footprint
			}
			for _, n0 := range shape.Divisors(g.N) {
				if (m0*k0+k0*n0+m0*n0)*es > a.RFBytes {
					break
				}
				for _, sp := range spatials {
					if g.M%(m0*sp) != 0 {
						continue
					}
					for _, m1 := range shape.Divisors(g.M / (m0 * sp)) {
						tm := m0 * m1 * sp
						if (tm*k0)*es > a.GBBytes {
							break
						}
						for _, k1 := range shape.Divisors(g.K / k0) {
							tk := k0 * k1
							if (tm*tk)*es > a.GBBytes {
								break
							}
							for _, n1 := range shape.Divisors(g.N / n0) {
								tn := n0 * n1
								if (tm*tk+tk*tn+tm*tn)*es > a.GBBytes {
									break
								}
								m = Mapping{
									M0: m0, K0: k0, N0: n0,
									M1: m1, K1: k1, N1: n1,
									Spatial: sp,
									M2:      g.M / (m0 * m1 * sp),
									K2:      g.K / (k0 * k1),
									N2:      g.N / (n0 * n1),
								}
								for _, ord := range dramOrders {
									m.OrderDRAM = ord
									visit(&m)
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestMapspaceMatchesReference checks exact visit-sequence parity with the
// pre-refactor nested-loop enumerator: same mappings, same order, same
// count, across shapes that exercise every pruning branch.
func TestMapspaceMatchesReference(t *testing.T) {
	cases := []struct {
		g  GEMM
		gb int64
	}{
		{GEMM{M: 16, K: 16, N: 16}, 1 << 10},
		{GEMM{M: 64, K: 64, N: 64}, 1 << 8}, // tight GB: break pruning dominates
		{GEMM{M: 64, K: 64, N: 64}, 1 << 14},
		{GEMM{M: 32, K: 8, N: 48}, 1 << 12}, // non-uniform ranks
	}
	for _, tc := range cases {
		a := smallArch(tc.gb)
		var want []Mapping
		referenceMapspace(tc.g, a, func(m *Mapping) { want = append(want, *m) })

		var got []Mapping
		Mapspace(tc.g, a, func(m *Mapping) { got = append(got, *m) })

		if len(got) != len(want) {
			t.Fatalf("%+v gb=%d: %d mappings vs reference %d", tc.g, tc.gb, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%+v gb=%d: mapping %d = %+v, reference %+v", tc.g, tc.gb, i, got[i], want[i])
			}
		}
	}
}

// TestMappingsEvaluatedMatchesReference pins the search's evaluation count
// to the reference enumerator at every worker count: pruning is preserved
// exactly under any partitioning of the combo space.
func TestMappingsEvaluatedMatchesReference(t *testing.T) {
	g := GEMM{M: 64, K: 64, N: 64}
	for _, gb := range []int64{1 << 8, 1 << 12} {
		a := smallArch(gb)
		var want int64
		referenceMapspace(g, a, func(*Mapping) { want++ })
		for _, w := range []int{1, 2, 5, 0} {
			res := SearchBest(g, a, Options{Workers: w})
			if res.MappingsEvaluated != want {
				t.Fatalf("gb=%d workers=%d: MappingsEvaluated %d, reference %d",
					gb, w, res.MappingsEvaluated, want)
			}
		}
	}
}

// TestParallelSearchMatchesSerial is the determinism contract: SearchBest,
// Samples, and DSE return byte-identical results for every worker count.
func TestParallelSearchMatchesSerial(t *testing.T) {
	g := GEMM{M: 64, K: 64, N: 64}
	a := smallArch(1 << 12)

	serial := SearchBest(g, a, Options{Workers: 1})
	if serial.Workers != 1 {
		t.Fatalf("serial search launched %d workers", serial.Workers)
	}
	serialPts := Samples(g, a, 0, Options{Workers: 1})
	serialCapped := Samples(g, a, 37, Options{Workers: 1})
	serialDSE := DSE(g, []int64{256, 1024, 4096}, Options{Workers: 1})

	for _, w := range []int{2, 3, 0} {
		par := SearchBest(g, a, Options{Workers: w})
		if par.BestDRAMBytes != serial.BestDRAMBytes ||
			par.BestGBBytesUsed != serial.BestGBBytesUsed ||
			par.MappingsEvaluated != serial.MappingsEvaluated {
			t.Fatalf("workers=%d: SearchBest (%d,%d,%d) vs serial (%d,%d,%d)",
				w, par.BestDRAMBytes, par.BestGBBytesUsed, par.MappingsEvaluated,
				serial.BestDRAMBytes, serial.BestGBBytesUsed, serial.MappingsEvaluated)
		}

		for name, pair := range map[string][2][]pareto.Point{
			"all":    {serialPts, Samples(g, a, 0, Options{Workers: w})},
			"capped": {serialCapped, Samples(g, a, 37, Options{Workers: w})},
		} {
			sp, pp := pair[0], pair[1]
			if len(sp) != len(pp) {
				t.Fatalf("workers=%d Samples(%s): %d points vs serial %d", w, name, len(pp), len(sp))
			}
			for i := range sp {
				if sp[i] != pp[i] {
					t.Fatalf("workers=%d Samples(%s) point %d: %v vs serial %v", w, name, i, pp[i], sp[i])
				}
			}
		}

		parDSE := DSE(g, []int64{256, 1024, 4096}, Options{Workers: w})
		for i := range serialDSE {
			if parDSE[i].BestDRAMBytes != serialDSE[i].BestDRAMBytes ||
				parDSE[i].BestGBBytesUsed != serialDSE[i].BestGBBytesUsed ||
				parDSE[i].MappingsEvaluated != serialDSE[i].MappingsEvaluated {
				t.Fatalf("workers=%d DSE[%d] differs from serial", w, i)
			}
		}
	}
}

// TestSamplesEvenCoverage verifies the sampling-bias fix: a capped sample
// returns exactly limit points drawn evenly from the whole enumeration, so
// the last sampled point comes from the final stretch of the mapspace
// rather than a stride-truncated prefix.
func TestSamplesEvenCoverage(t *testing.T) {
	g := GEMM{M: 16, K: 16, N: 16}
	a := smallArch(1 << 12)
	all := Samples(g, a, 0, Options{})
	if len(all) <= 40 {
		t.Skipf("mapspace too small: %d", len(all))
	}
	limit := 40
	capped := Samples(g, a, limit, Options{})
	if len(capped) != limit {
		t.Fatalf("Samples(limit=%d) returned %d points", limit, len(capped))
	}
	for i := range capped {
		if want := all[int64(i)*int64(len(all))/int64(limit)]; capped[i] != want {
			t.Fatalf("sample %d = %v, want even-coverage point %v", i, capped[i], want)
		}
	}
	if lastIdx := int64(limit-1) * int64(len(all)) / int64(limit); lastIdx < int64(len(all))*3/4 {
		t.Fatalf("last sample index %d not in the final quarter of %d points", lastIdx, len(all))
	}
}
