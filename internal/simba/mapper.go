package simba

import (
	"time"

	"repro/internal/pareto"
	"repro/internal/shape"
)

// dramOrders is the set of DRAM-level loop orders the mapper explores.
var dramOrders = [][3]string{
	{"M", "K", "N"}, {"M", "N", "K"},
	{"K", "M", "N"}, {"K", "N", "M"},
	{"N", "M", "K"}, {"N", "K", "M"},
}

// Mapspace enumerates every legal mapping of g on a, with capacity-based
// pruning: factor choices are explored in ascending order and abandoned as
// soon as the RF or GB capacity is exceeded (footprints are monotone in
// every factor). The Mapping value is reused across visits.
func Mapspace(g GEMM, a Arch, visit func(*Mapping)) {
	es := a.ElementSize
	var m Mapping

	spatials := []int64{1}
	for _, s := range shape.Divisors(g.M) {
		if s > 1 && s <= a.PEs {
			spatials = append(spatials, s)
		}
	}

	for _, m0 := range shape.Divisors(g.M) {
		for _, k0 := range shape.Divisors(g.K) {
			if (m0*k0)*es > a.RFBytes {
				break // k0 ascending; larger only grows the footprint
			}
			for _, n0 := range shape.Divisors(g.N) {
				if (m0*k0+k0*n0+m0*n0)*es > a.RFBytes {
					break
				}
				for _, sp := range spatials {
					if g.M%(m0*sp) != 0 {
						continue
					}
					for _, m1 := range shape.Divisors(g.M / (m0 * sp)) {
						tm := m0 * m1 * sp
						if (tm*k0)*es > a.GBBytes {
							break
						}
						for _, k1 := range shape.Divisors(g.K / k0) {
							tk := k0 * k1
							if (tm*tk)*es > a.GBBytes {
								break
							}
							for _, n1 := range shape.Divisors(g.N / n0) {
								tn := n0 * n1
								if (tm*tk+tk*tn+tm*tn)*es > a.GBBytes {
									break
								}
								m = Mapping{
									M0: m0, K0: k0, N0: n0,
									M1: m1, K1: k1, N1: n1,
									Spatial: sp,
									M2:      g.M / (m0 * m1 * sp),
									K2:      g.K / (k0 * k1),
									N2:      g.N / (n0 * n1),
								}
								for _, ord := range dramOrders {
									m.OrderDRAM = ord
									visit(&m)
								}
							}
						}
					}
				}
			}
		}
	}
}

// DSEResult reports one architecture configuration's best mapping and the
// search cost.
type DSEResult struct {
	Arch              Arch
	BestDRAMBytes     int64
	BestGBBytesUsed   int64
	MappingsEvaluated int64
	Elapsed           time.Duration
}

// SearchBest exhaustively maps g onto a and returns the mapping with the
// fewest DRAM accesses.
func SearchBest(g GEMM, a Arch) DSEResult {
	start := time.Now()
	res := DSEResult{Arch: a, BestDRAMBytes: -1}
	Mapspace(g, a, func(m *Mapping) {
		r := Evaluate(g, a, m)
		res.MappingsEvaluated++
		if res.BestDRAMBytes < 0 || r.DRAMAccessBytes < res.BestDRAMBytes {
			res.BestDRAMBytes = r.DRAMAccessBytes
			res.BestGBBytesUsed = r.GBBytesUsed
		}
	})
	res.Elapsed = time.Since(start)
	return res
}

// Samples collects every evaluated (GB footprint, DRAM accesses) point of
// a configuration — the scatter of Fig. 24b. Capped at limit points
// (0 = unlimited) sampled deterministically by stride.
func Samples(g GEMM, a Arch, limit int) []pareto.Point {
	var all []pareto.Point
	Mapspace(g, a, func(m *Mapping) {
		r := Evaluate(g, a, m)
		all = append(all, pareto.Point{BufferBytes: r.GBBytesUsed, AccessBytes: r.DRAMAccessBytes})
	})
	if limit <= 0 || len(all) <= limit {
		return all
	}
	stride := len(all) / limit
	out := make([]pareto.Point, 0, limit)
	for i := 0; i < len(all) && len(out) < limit; i += stride {
		out = append(out, all[i])
	}
	return out
}

// DSE runs SearchBest across many Global-Buffer capacities, reproducing
// the 100-design sweep of Table I.
func DSE(g GEMM, gbSizes []int64) []DSEResult {
	out := make([]DSEResult, 0, len(gbSizes))
	for _, gb := range gbSizes {
		out = append(out, SearchBest(g, Default(gb)))
	}
	return out
}
