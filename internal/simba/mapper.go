package simba

import (
	"context"
	"sort"
	"time"

	"repro/internal/pareto"
	"repro/internal/shape"
	"repro/internal/traverse"
)

// Options tunes the mapspace traversal.
type Options struct {
	// Workers sets the number of parallel evaluation goroutines; zero
	// (or negative) means GOMAXPROCS. Search results, samples, and
	// evaluation counts are identical for every worker count.
	Workers int
}

// dramOrders is the set of DRAM-level loop orders the mapper explores.
var dramOrders = [][3]string{
	{"M", "K", "N"}, {"M", "N", "K"},
	{"K", "M", "N"}, {"K", "N", "M"},
	{"N", "M", "K"}, {"N", "K", "M"},
}

// space is the index-addressable form of the Simba mapspace, built for the
// shared traversal engine (internal/traverse): the outer factor choices
// (m0, k0, n0, spatial) form a flat mixed-radix index space that the
// engine chunks across workers, while the Global-Buffer factors and loop
// orders are expanded inside each chunk with the capacity-based break
// pruning intact (footprints are monotone in every ascending divisor, so
// a break abandons only infeasible suffixes).
type space struct {
	g                  GEMM
	a                  Arch
	m0s, k0s, n0s, sps []int64
}

func newSpace(g GEMM, a Arch) *space {
	sps := []int64{1}
	for _, s := range shape.Divisors(g.M) {
		if s > 1 && s <= a.PEs {
			sps = append(sps, s)
		}
	}
	return &space{
		g: g, a: a,
		m0s: shape.Divisors(g.M),
		k0s: shape.Divisors(g.K),
		n0s: shape.Divisors(g.N),
		sps: sps,
	}
}

// combos returns the number of outer-factor index combinations.
func (s *space) combos() int64 {
	return int64(len(s.m0s)) * int64(len(s.k0s)) * int64(len(s.n0s)) * int64(len(s.sps))
}

// visit walks the combinations with flat index in [lo, hi) in serial
// enumeration order, calling fn for every legal mapping along with its
// position — the combination index and the mapping's ordinal within the
// combination — and returns the number of mappings evaluated. The nested
// enumerator pruned infeasible outer choices with break; because divisors
// ascend and footprints are monotone, skipping each infeasible
// combination by the same capacity checks evaluates exactly the same set
// of mappings, so MappingsEvaluated counts stay exact under any
// partitioning. The Mapping value is reused across calls.
func (s *space) visit(lo, hi int64, fn func(m *Mapping, combo int64, ord int)) int64 {
	g, a, es := s.g, s.a, s.a.ElementSize
	var m Mapping
	var count int64
	for combo := lo; combo < hi; combo++ {
		// Decode: m0 varies slowest, spatial fastest — the nesting order
		// of the serial enumeration.
		rem := combo
		sp := s.sps[rem%int64(len(s.sps))]
		rem /= int64(len(s.sps))
		n0 := s.n0s[rem%int64(len(s.n0s))]
		rem /= int64(len(s.n0s))
		k0 := s.k0s[rem%int64(len(s.k0s))]
		m0 := s.m0s[rem/int64(len(s.k0s))]

		if (m0*k0)*es > a.RFBytes {
			continue
		}
		if (m0*k0+k0*n0+m0*n0)*es > a.RFBytes {
			continue
		}
		if g.M%(m0*sp) != 0 {
			continue
		}
		ord := 0
		for _, m1 := range shape.Divisors(g.M / (m0 * sp)) {
			tm := m0 * m1 * sp
			if (tm*k0)*es > a.GBBytes {
				break // m1 ascending; larger only grows the footprint
			}
			for _, k1 := range shape.Divisors(g.K / k0) {
				tk := k0 * k1
				if (tm*tk)*es > a.GBBytes {
					break
				}
				for _, n1 := range shape.Divisors(g.N / n0) {
					tn := n0 * n1
					if (tm*tk+tk*tn+tm*tn)*es > a.GBBytes {
						break
					}
					m = Mapping{
						M0: m0, K0: k0, N0: n0,
						M1: m1, K1: k1, N1: n1,
						Spatial: sp,
						M2:      g.M / (m0 * m1 * sp),
						K2:      g.K / (k0 * k1),
						N2:      g.N / (n0 * n1),
					}
					for _, ordDRAM := range dramOrders {
						m.OrderDRAM = ordDRAM
						fn(&m, combo, ord)
						ord++
						count++
					}
				}
			}
		}
	}
	return count
}

// Mapspace enumerates every legal mapping of g on a in serial enumeration
// order, with capacity-based pruning. The Mapping value is reused across
// visits.
func Mapspace(g GEMM, a Arch, visit func(*Mapping)) {
	s := newSpace(g, a)
	s.visit(0, s.combos(), func(m *Mapping, _ int64, _ int) { visit(m) })
}

// position orders mappings by their place in the serial enumeration.
type position struct {
	combo int64
	ord   int
}

func (p position) before(q position) bool {
	return p.combo < q.combo || (p.combo == q.combo && p.ord < q.ord)
}

// DSEResult reports one architecture configuration's best mapping and the
// search cost.
type DSEResult struct {
	Arch              Arch
	BestDRAMBytes     int64
	BestGBBytesUsed   int64
	MappingsEvaluated int64
	Elapsed           time.Duration

	// Workers is the number of evaluation goroutines the traversal
	// actually launched.
	Workers int
}

// MappingsPerSec returns the search throughput.
func (r DSEResult) MappingsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.MappingsEvaluated) / r.Elapsed.Seconds()
}

// SearchBest exhaustively maps g onto a and returns the mapping with the
// fewest DRAM accesses. The traversal is distributed over Options.Workers
// goroutines; per-worker bests carry their enumeration position, and ties
// on DRAM accesses resolve to the earliest position, so the result is
// identical to the serial search for every worker count.
func SearchBest(g GEMM, a Arch, opts Options) DSEResult {
	start := time.Now()
	s := newSpace(g, a)
	items := s.combos()

	type best struct {
		found    bool
		dram, gb int64
		pos      position
	}
	w := traverse.WorkerCount(items, opts.Workers)
	bests := make([]best, w)
	stats, _ := traverse.Partition(context.Background(), items, w, func(wi int) traverse.RangeFunc {
		bi := &bests[wi]
		return func(lo, hi int64) int64 {
			return s.visit(lo, hi, func(m *Mapping, combo int64, ord int) {
				r := Evaluate(g, a, m)
				p := position{combo, ord}
				if !bi.found || r.DRAMAccessBytes < bi.dram ||
					(r.DRAMAccessBytes == bi.dram && p.before(bi.pos)) {
					*bi = best{true, r.DRAMAccessBytes, r.GBBytesUsed, p}
				}
			})
		}
	})

	res := DSEResult{
		Arch:              a,
		BestDRAMBytes:     -1,
		MappingsEvaluated: stats.Evaluated,
		Workers:           stats.Workers,
	}
	var bb best
	for _, bi := range bests {
		if !bi.found {
			continue
		}
		if !bb.found || bi.dram < bb.dram || (bi.dram == bb.dram && bi.pos.before(bb.pos)) {
			bb = bi
		}
	}
	if bb.found {
		res.BestDRAMBytes = bb.dram
		res.BestGBBytesUsed = bb.gb
	}
	res.Elapsed = time.Since(start)
	return res
}

// Samples collects every evaluated (GB footprint, DRAM accesses) point of
// a configuration — the scatter of Fig. 24b — in serial enumeration order
// regardless of worker count. When limit > 0 and the mapspace is larger,
// exactly limit points are returned, sampled evenly across the whole
// enumeration (index i*len/limit), so the scatter is deterministic and
// unbiased rather than a stride-truncated prefix.
func Samples(g GEMM, a Arch, limit int, opts Options) []pareto.Point {
	s := newSpace(g, a)
	items := s.combos()

	type posPoint struct {
		pos position
		pt  pareto.Point
	}
	w := traverse.WorkerCount(items, opts.Workers)
	buckets := make([][]posPoint, w)
	traverse.Partition(context.Background(), items, w, func(wi int) traverse.RangeFunc {
		return func(lo, hi int64) int64 {
			return s.visit(lo, hi, func(m *Mapping, combo int64, ord int) {
				r := Evaluate(g, a, m)
				buckets[wi] = append(buckets[wi], posPoint{
					pos: position{combo, ord},
					pt:  pareto.Point{BufferBytes: r.GBBytesUsed, AccessBytes: r.DRAMAccessBytes},
				})
			})
		}
	})

	total := 0
	for _, b := range buckets {
		total += len(b)
	}
	all := make([]posPoint, 0, total)
	for _, b := range buckets {
		all = append(all, b...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].pos.before(all[j].pos) })

	if limit <= 0 || len(all) <= limit {
		out := make([]pareto.Point, len(all))
		for i, p := range all {
			out[i] = p.pt
		}
		return out
	}
	out := make([]pareto.Point, limit)
	for i := range out {
		out[i] = all[int64(i)*int64(len(all))/int64(limit)].pt
	}
	return out
}

// DSE runs SearchBest across many Global-Buffer capacities, reproducing
// the 100-design sweep of Table I. Each design's search runs on the
// shared traversal engine with Options.Workers goroutines.
func DSE(g GEMM, gbSizes []int64, opts Options) []DSEResult {
	out := make([]DSEResult, 0, len(gbSizes))
	for _, gb := range gbSizes {
		out = append(out, SearchBest(g, Default(gb), opts))
	}
	return out
}
