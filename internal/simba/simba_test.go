package simba

import (
	"testing"

	"repro/internal/bound"
	"repro/internal/einsum"
)

func smallArch(gb int64) Arch {
	return Arch{Name: "test", PEs: 4, RFBytes: 256, GBBytes: gb, ElementSize: 2}
}

func TestMappingValidate(t *testing.T) {
	g := GEMM{M: 64, K: 32, N: 16}
	a := smallArch(1 << 14)
	ok := &Mapping{
		M0: 4, K0: 4, N0: 4,
		M1: 4, K1: 4, N1: 2,
		Spatial: 2,
		M2:      2, K2: 2, N2: 2,
		OrderDRAM: [3]string{"M", "K", "N"},
	}
	if err := ok.Validate(g, a); err != nil {
		t.Fatal(err)
	}
	bad := *ok
	bad.M2 = 4
	if err := bad.Validate(g, a); err == nil {
		t.Fatal("non-covering factorization accepted")
	}
	bad = *ok
	bad.Spatial = 8
	if err := bad.Validate(g, a); err == nil {
		t.Fatal("spatial beyond PEs accepted")
	}
	bad = *ok
	bad.M0, bad.K0, bad.N0 = 16, 16, 16
	if err := bad.Validate(g, a); err == nil {
		t.Fatal("RF overflow accepted")
	}
}

func TestEvaluateHandComputed(t *testing.T) {
	// GEMM 8x8x8; RF tiles 2x2x2, GB factors 2x2x2, no spatial,
	// DRAM loops M2=K2=N2=2 ordered M,K,N (outermost..innermost).
	g := GEMM{M: 8, K: 8, N: 8}
	a := Arch{Name: "t", PEs: 1, RFBytes: 1 << 10, GBBytes: 1 << 20, ElementSize: 2}
	m := &Mapping{
		M0: 2, K0: 2, N0: 2, M1: 2, K1: 2, N1: 2, Spatial: 1, M2: 2, K2: 2, N2: 2,
		OrderDRAM: [3]string{"M", "K", "N"},
	}
	if err := m.Validate(g, a); err != nil {
		t.Fatal(err)
	}
	r := Evaluate(g, a, m)
	// GB tiles 4x4x4: footprint 3*16 = 48 elems = 96 B.
	if r.GBBytesUsed != 96 {
		t.Fatalf("GBBytesUsed = %d, want 96", r.GBBytesUsed)
	}
	if r.RFBytesUsed != 24 {
		t.Fatalf("RFBytesUsed = %d, want 24", r.RFBytesUsed)
	}
	// DRAM: A (M,K): innermost relevant K2 -> iters M2*K2 = 4, tile 16 ->
	// 64 elems. W (K,N): innermost relevant N2 -> iters 8, tile 16 -> 128.
	// B (M,N): innermost relevant N2 -> iters 8, tile 16 -> 128.
	if r.DRAMAccessBytes != (64+128+128)*2 {
		t.Fatalf("DRAMAccessBytes = %d, want %d", r.DRAMAccessBytes, (64+128+128)*2)
	}
}

func TestMapspaceAllLegal(t *testing.T) {
	g := GEMM{M: 16, K: 16, N: 16}
	a := smallArch(1 << 10)
	count := 0
	Mapspace(g, a, func(m *Mapping) {
		if err := m.Validate(g, a); err != nil {
			t.Fatalf("mapper emitted illegal mapping: %v", err)
		}
		count++
	})
	if count == 0 {
		t.Fatal("empty mapspace")
	}
}

func TestCapacityPruning(t *testing.T) {
	g := GEMM{M: 64, K: 64, N: 64}
	countSmall, countLarge := 0, 0
	Mapspace(g, smallArch(1<<8), func(*Mapping) { countSmall++ })
	Mapspace(g, smallArch(1<<14), func(*Mapping) { countLarge++ })
	if countSmall >= countLarge {
		t.Fatalf("smaller GB should have a smaller mapspace: %d vs %d", countSmall, countLarge)
	}
}

// TestDRAMAboveOrojenesisBound is the Fig. 24b validation: every Simba
// mapping's DRAM accesses sit on or above the Snowcat-derived bound at
// the mapping's Global-Buffer footprint.
func TestDRAMAboveOrojenesisBound(t *testing.T) {
	g := GEMM{M: 32, K: 32, N: 32}
	e := einsum.GEMM("g", g.M, g.K, g.N)
	curve := bound.Derive(e, bound.Options{}).Curve

	for _, gb := range []int64{256, 1024, 4096} {
		a := smallArch(gb)
		Mapspace(g, a, func(m *Mapping) {
			r := Evaluate(g, a, m)
			bnd, ok := curve.AccessesAt(r.GBBytesUsed)
			if !ok {
				t.Fatalf("no bound at GB footprint %d", r.GBBytesUsed)
			}
			if r.DRAMAccessBytes < bnd {
				t.Fatalf("mapping %+v beats the bound: %d < %d at %d bytes",
					m, r.DRAMAccessBytes, bnd, r.GBBytesUsed)
			}
		})
	}
}

func TestSearchBestImprovesWithGB(t *testing.T) {
	g := GEMM{M: 64, K: 64, N: 64}
	small := SearchBest(g, smallArch(1<<9), Options{})
	large := SearchBest(g, smallArch(1<<14), Options{})
	if small.BestDRAMBytes < large.BestDRAMBytes {
		t.Fatalf("larger GB should not increase best DRAM accesses: %d vs %d",
			small.BestDRAMBytes, large.BestDRAMBytes)
	}
	if small.MappingsEvaluated == 0 || large.MappingsEvaluated == 0 {
		t.Fatal("no mappings evaluated")
	}
}

func TestSamplesLimit(t *testing.T) {
	g := GEMM{M: 16, K: 16, N: 16}
	a := smallArch(1 << 12)
	all := Samples(g, a, 0, Options{})
	capped := Samples(g, a, 10, Options{})
	if len(all) <= 10 {
		t.Skipf("mapspace too small to test capping: %d", len(all))
	}
	if len(capped) != 10 {
		t.Fatalf("Samples(limit=10) returned %d points", len(capped))
	}
}

func TestDSESweep(t *testing.T) {
	g := GEMM{M: 32, K: 32, N: 32}
	results := DSE(g, []int64{256, 512, 1024}, Options{})
	if len(results) != 3 {
		t.Fatalf("DSE returned %d results", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].BestDRAMBytes > results[i-1].BestDRAMBytes {
			t.Fatalf("best DRAM accesses should not grow with GB size: %+v", results)
		}
	}
}

func TestGBTrafficExceedsDRAM(t *testing.T) {
	// Data must flow through the GB to reach the RFs, so GB traffic is at
	// least the DRAM traffic for any mapping with deeper tiling.
	g := GEMM{M: 32, K: 32, N: 32}
	a := smallArch(1 << 12)
	checked := 0
	Mapspace(g, a, func(m *Mapping) {
		r := Evaluate(g, a, m)
		if r.GBAccessBytes < r.DRAMAccessBytes {
			t.Fatalf("GB traffic %d below DRAM traffic %d for %+v",
				r.GBAccessBytes, r.DRAMAccessBytes, m)
		}
		checked++
	})
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}
