// Package shape provides small integer and size utilities used throughout
// the Orojenesis flow: divisor enumeration for the perfect-factor tilings
// the paper's mapspace is built from (Sec. III-A — the source of the
// step pattern in every ski-slope figure), two-level factorizations of
// rank shapes, and human-readable byte formatting for reports.
package shape

import (
	"fmt"
	"sort"
)

// Divisors returns all positive divisors of n in ascending order.
// n must be >= 1; Divisors panics otherwise because a rank shape of zero
// or a negative bound is always a programming error in this code base.
func Divisors(n int64) []int64 {
	if n < 1 {
		panic(fmt.Sprintf("shape: Divisors(%d): argument must be >= 1", n))
	}
	var small, large []int64
	for d := int64(1); d*d <= n; d++ {
		if n%d == 0 {
			small = append(small, d)
			if q := n / d; q != d {
				large = append(large, q)
			}
		}
	}
	for i := len(large) - 1; i >= 0; i-- {
		small = append(small, large[i])
	}
	return small
}

// CountDivisors returns the number of positive divisors of n.
func CountDivisors(n int64) int {
	return len(Divisors(n))
}

// Split is a two-level perfect factorization of a rank shape: the rank is
// tiled into an Inner (buffer-resident) tile iterated Outer times, with
// Inner*Outer equal to the full shape.
type Split struct {
	Inner int64 // buffer-level tile size
	Outer int64 // backing-store-level loop bound
}

// Splits returns every perfect two-level factorization of n, ordered by
// ascending inner tile size.
func Splits(n int64) []Split {
	divs := Divisors(n)
	out := make([]Split, len(divs))
	for i, d := range divs {
		out[i] = Split{Inner: d, Outer: n / d}
	}
	return out
}

// ThreeSplit is a three-level perfect factorization used by the fusion
// templates (e.g. K0/K1/K2 in the GEMM FFMT): Full = L0*L1*L2.
type ThreeSplit struct {
	L0, L1, L2 int64
}

// ThreeSplits returns every perfect three-level factorization of n.
func ThreeSplits(n int64) []ThreeSplit {
	var out []ThreeSplit
	for _, d0 := range Divisors(n) {
		rest := n / d0
		for _, d1 := range Divisors(rest) {
			out = append(out, ThreeSplit{L0: d0, L1: d1, L2: rest / d1})
		}
	}
	return out
}

// Product multiplies a slice of bounds, panicking on overflow. Access
// counts in this code base stay far below 2^63, but a silent wrap would be
// disastrous for a bounds tool, so we check.
func Product(xs ...int64) int64 {
	p := int64(1)
	for _, x := range xs {
		if x == 0 {
			return 0
		}
		if p > (1<<62)/x {
			panic(fmt.Sprintf("shape: Product overflow: %v", xs))
		}
		p *= x
	}
	return p
}

// CeilDiv returns ceil(a/b) for positive integers.
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		panic(fmt.Sprintf("shape: CeilDiv by %d", b))
	}
	return (a + b - 1) / b
}

// Max returns the larger of a and b.
func Max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller of a and b.
func Min(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// MaxInt returns the larger of two ints.
func MaxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FormatBytes renders a byte count with binary-prefix units, matching the
// axis labels used in the paper's figures (KB = 2^10, MB = 2^20, ...).
func FormatBytes(b int64) string {
	const (
		kb = 1 << 10
		mb = 1 << 20
		gb = 1 << 30
	)
	switch {
	case b >= gb:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(gb))
	case b >= mb:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(mb))
	case b >= kb:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(kb))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// Permutations returns all permutations of the integers [0, n). The result
// is deterministic: lexicographic order. n must be small (<= 8).
func Permutations(n int) [][]int {
	if n < 0 || n > 8 {
		panic(fmt.Sprintf("shape: Permutations(%d): n must be in [0, 8]", n))
	}
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(prefix []int, rest []int)
	rec = func(prefix, rest []int) {
		if len(rest) == 0 {
			p := make([]int, len(prefix))
			copy(p, prefix)
			out = append(out, p)
			return
		}
		for i, v := range rest {
			nr := make([]int, 0, len(rest)-1)
			nr = append(nr, rest[:i]...)
			nr = append(nr, rest[i+1:]...)
			rec(append(prefix, v), nr)
		}
	}
	rec(nil, base)
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}
