package shape

import (
	"testing"
	"testing/quick"
)

func TestDivisors(t *testing.T) {
	cases := []struct {
		n    int64
		want []int64
	}{
		{1, []int64{1}},
		{2, []int64{1, 2}},
		{12, []int64{1, 2, 3, 4, 6, 12}},
		{16, []int64{1, 2, 4, 8, 16}},
		{17, []int64{1, 17}},
		{36, []int64{1, 2, 3, 4, 6, 9, 12, 18, 36}},
	}
	for _, c := range cases {
		got := Divisors(c.n)
		if len(got) != len(c.want) {
			t.Fatalf("Divisors(%d) = %v, want %v", c.n, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Divisors(%d) = %v, want %v", c.n, got, c.want)
			}
		}
	}
}

func TestDivisorsPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Divisors(0) did not panic")
		}
	}()
	Divisors(0)
}

func TestDivisorsProperties(t *testing.T) {
	f := func(raw uint16) bool {
		n := int64(raw%4096) + 1
		divs := Divisors(n)
		// Sorted, unique, all divide n, includes 1 and n.
		if divs[0] != 1 || divs[len(divs)-1] != n {
			return false
		}
		for i, d := range divs {
			if n%d != 0 {
				return false
			}
			if i > 0 && divs[i-1] >= d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplits(t *testing.T) {
	sp := Splits(12)
	if len(sp) != 6 {
		t.Fatalf("Splits(12) returned %d entries, want 6", len(sp))
	}
	for _, s := range sp {
		if s.Inner*s.Outer != 12 {
			t.Fatalf("split %+v does not multiply to 12", s)
		}
	}
	if sp[0].Inner != 1 || sp[len(sp)-1].Inner != 12 {
		t.Fatalf("Splits(12) not ordered by inner: %+v", sp)
	}
}

func TestThreeSplits(t *testing.T) {
	ts := ThreeSplits(8)
	// For n = p^3 with p prime^k... count = number of ordered triples
	// (a,b,c) with abc=8: for 2^3 it is C(3+2,2) = 10.
	if len(ts) != 10 {
		t.Fatalf("ThreeSplits(8) returned %d entries, want 10", len(ts))
	}
	for _, s := range ts {
		if s.L0*s.L1*s.L2 != 8 {
			t.Fatalf("three-split %+v does not multiply to 8", s)
		}
	}
}

func TestProduct(t *testing.T) {
	if got := Product(3, 4, 5); got != 60 {
		t.Fatalf("Product(3,4,5) = %d, want 60", got)
	}
	if got := Product(); got != 1 {
		t.Fatalf("Product() = %d, want 1", got)
	}
	if got := Product(10, 0, 5); got != 0 {
		t.Fatalf("Product with zero = %d, want 0", got)
	}
}

func TestProductOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Product overflow did not panic")
		}
	}()
	Product(1<<40, 1<<40)
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{10, 5, 2}, {11, 5, 3}, {1, 5, 1}, {5, 5, 1}, {0, 5, 0},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Fatalf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	if Max(3, 7) != 7 || Max(7, 3) != 7 {
		t.Fatal("Max broken")
	}
	if Min(3, 7) != 3 || Min(7, 3) != 3 {
		t.Fatal("Min broken")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		b    int64
		want string
	}{
		{512, "512B"},
		{1 << 10, "1.00KB"},
		{320 << 20, "320.00MB"},
		{3 << 30, "3.00GB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.b); got != c.want {
			t.Fatalf("FormatBytes(%d) = %q, want %q", c.b, got, c.want)
		}
	}
}

func TestPermutations(t *testing.T) {
	p3 := Permutations(3)
	if len(p3) != 6 {
		t.Fatalf("Permutations(3) returned %d, want 6", len(p3))
	}
	seen := map[[3]int]bool{}
	for _, p := range p3 {
		var key [3]int
		copy(key[:], p)
		if seen[key] {
			t.Fatalf("duplicate permutation %v", p)
		}
		seen[key] = true
	}
	if len(Permutations(0)) != 1 {
		t.Fatal("Permutations(0) should contain the empty permutation")
	}
}

func TestSplitsProperty(t *testing.T) {
	f := func(raw uint16) bool {
		n := int64(raw%2048) + 1
		for _, s := range Splits(n) {
			if s.Inner*s.Outer != n || s.Inner < 1 || s.Outer < 1 {
				return false
			}
		}
		return len(Splits(n)) == len(Divisors(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
