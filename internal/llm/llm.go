// Package llm assembles the paper's Sec. VII case study: the GPT-3-6.7b
// transformer building block (Fig. 19) as Orojenesis workloads — the MHA
// fusion-strategy comparison (Fig. 20), the six-Einsum fused chain
// (Fig. 21), the full-block bound (Fig. 22) and the inputs to the
// buffer-area provisioning model (Fig. 23).
package llm

import (
	"fmt"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/fusion"
	"repro/internal/pareto"
)

// Config describes a decoder-style transformer block workload.
type Config struct {
	Name    string
	SeqLen  int64 // tokens per sequence
	Batch   int64 // independent sequences
	D       int64 // model (feature) dimension
	Heads   int64 // attention heads
	HeadDim int64 // per-head feature dimension (D = Heads * HeadDim)
	Hidden  int64 // FFN hidden dimension
}

// GPT3_6_7B returns the paper's target workload: d=4096, 32 heads of 128,
// hidden 16384, sequence length 2048 at batch 16 (l = 32768).
func GPT3_6_7B() Config {
	return Config{
		Name:    "GPT-3-6.7b",
		SeqLen:  2048,
		Batch:   16,
		D:       4096,
		Heads:   32,
		HeadDim: 128,
		Hidden:  16384,
	}
}

// Scaled returns a proportionally shrunken configuration for tests and
// quick runs; factor must divide the dimensions cleanly for perfect
// factorizations (powers of two work).
func (c Config) Scaled(factor int64) Config {
	s := c
	s.Name = fmt.Sprintf("%s/%d", c.Name, factor)
	s.SeqLen /= factor
	s.D /= factor
	s.HeadDim /= factor
	s.Hidden /= factor
	return s
}

// Validate checks dimensional consistency.
func (c Config) Validate() error {
	if c.SeqLen < 1 || c.Batch < 1 || c.D < 1 || c.Heads < 1 || c.HeadDim < 1 || c.Hidden < 1 {
		return fmt.Errorf("llm: %s: non-positive dimension", c.Name)
	}
	if c.Heads*c.HeadDim != c.D {
		return fmt.Errorf("llm: %s: heads %d * head dim %d != d %d", c.Name, c.Heads, c.HeadDim, c.D)
	}
	return nil
}

// L is the flattened token count l = seq * batch flowing through the block.
func (c Config) L() int64 { return c.SeqLen * c.Batch }

// QProj, KProj, VProj and FinalProj are the l x d x d projection GEMMs;
// MM0 and MM1 are the FFN GEMMs.
func (c Config) QProj() *einsum.Einsum     { return einsum.GEMM("Q_proj", c.L(), c.D, c.D) }
func (c Config) KProj() *einsum.Einsum     { return einsum.GEMM("K_proj", c.L(), c.D, c.D) }
func (c Config) VProj() *einsum.Einsum     { return einsum.GEMM("V_proj", c.L(), c.D, c.D) }
func (c Config) FinalProj() *einsum.Einsum { return einsum.GEMM("Final_proj", c.L(), c.D, c.D) }
func (c Config) MM0() *einsum.Einsum       { return einsum.GEMM("mm_0", c.L(), c.D, c.Hidden) }
func (c Config) MM1() *einsum.Einsum       { return einsum.GEMM("mm_1", c.L(), c.Hidden, c.D) }

// BmmQK and BmmQKV are the attention BMMs with the batch folded into the
// head dimension (batch*heads instances of seq x seq score matrices).
func (c Config) BmmQK() *einsum.Einsum {
	return einsum.BMM("bmm_QK", c.Batch*c.Heads, c.SeqLen, c.HeadDim, c.SeqLen)
}
func (c Config) BmmQKV() *einsum.Einsum {
	return einsum.BMM("bmm_QKV", c.Batch*c.Heads, c.SeqLen, c.SeqLen, c.HeadDim)
}

// AllEinsums returns every Einsum of one building block in execution order.
func (c Config) AllEinsums() []*einsum.Einsum {
	return []*einsum.Einsum{
		c.QProj(), c.KProj(), c.VProj(),
		c.BmmQK(), c.BmmQKV(),
		c.FinalProj(), c.MM0(), c.MM1(),
	}
}

// BlockMACs is the total multiply-accumulate count of one building block.
func (c Config) BlockMACs() int64 {
	var total int64
	for _, e := range c.AllEinsums() {
		total += e.MACs()
	}
	return total
}

// MHA returns the attention pair's fusion-strategy configuration (Fig. 20).
func (c Config) MHA() fusion.MHAConfig {
	return fusion.MHAConfig{
		Instances:  c.Batch,
		Seq:        c.SeqLen,
		Heads:      c.Heads,
		FeatureDim: c.HeadDim,
	}
}

// SixEinsumChain builds the Fig. 21 fusion chain: Q_proj -> bmm_QK ->
// bmm_QKV -> Final_proj -> mm_0 -> mm_1. The softmax after bmm_QK and the
// layernorm after Final_proj pin those ops' output rows untiled when they
// end a fused segment (Sec. VII-B).
func (c Config) SixEinsumChain() *fusion.Chain {
	qk := fusion.AttentionQKOp("bmm_QK", c.Batch, c.SeqLen, c.Heads, c.HeadDim)
	qk.NoOutputTiling = true // softmax needs complete score rows
	fp := fusion.GEMMOp("Final_proj", c.L(), c.D, c.D)
	fp.NoOutputTiling = true // layernorm before the FFN
	return fusion.MustChain(c.Name+"-chain", c.L(),
		fusion.GEMMOp("Q_proj", c.L(), c.D, c.D),
		qk,
		fusion.AttentionQKVOp("bmm_QKV", c.Batch, c.SeqLen, c.Heads, c.HeadDim),
		fp,
		fusion.GEMMOp("mm_0", c.L(), c.D, c.Hidden),
		fusion.GEMMOp("mm_1", c.L(), c.Hidden, c.D),
	)
}

// BlockStudy bundles the curves of the full-building-block analysis.
type BlockStudy struct {
	Config Config

	// Chain analyses (Fig. 21): optimal unfused, maximal tiled fusion,
	// and the best segmentation at every capacity.
	ChainUnfused   *pareto.Curve
	ChainFused     *pareto.Curve
	ChainSegmented *pareto.Curve

	// Full-block curves (Fig. 22) add the unfused K_proj and V_proj.
	BlockUnfused   *pareto.Curve
	BlockFused     *pareto.Curve
	BlockSegmented *pareto.Curve

	// Annotations.
	AlgoMinUnfusedBytes int64
	AlgoMinFusedBytes   int64
	BlockMACs           int64
}

// NewBlockStudy derives every curve of the Sec. VII-B/VII-C analysis.
// It is the heavyweight entry point: at full GPT-3-6.7b scale it runs a
// few hundred thousand Snowcat evaluations plus the fused mapspace search.
func NewBlockStudy(c Config, opts bound.Options) (*BlockStudy, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	chain := c.SixEinsumChain()
	perOp := chain.PerOpCurves(opts)

	chainUnfused := fusion.UnfusedCurve(perOp)
	chainFused, _, err := fusion.TiledFusionStats(chain, opts.Workers)
	if err != nil {
		return nil, err
	}
	chainSegmented, _, err := fusion.BestSegmentationStats(chain, perOp, opts.Workers)
	if err != nil {
		return nil, err
	}

	kProj := bound.Derive(c.KProj(), opts).Curve
	vProj := bound.Derive(c.VProj(), opts).Curve

	study := &BlockStudy{
		Config:         c,
		ChainUnfused:   chainUnfused,
		ChainFused:     chainFused,
		ChainSegmented: chainSegmented,
		BlockUnfused:   pareto.Sum(chainUnfused, kProj, vProj),
		BlockFused:     pareto.Sum(chainFused, kProj, vProj),
		BlockSegmented: pareto.Sum(chainSegmented, kProj, vProj),
		BlockMACs:      c.BlockMACs(),
	}
	study.AlgoMinFusedBytes = chain.FusedAlgoMinBytes() +
		c.KProj().AlgorithmicMinBytes() + c.VProj().AlgorithmicMinBytes()
	for _, e := range c.AllEinsums() {
		study.AlgoMinUnfusedBytes += e.AlgorithmicMinBytes()
	}
	study.BlockUnfused.AlgoMinBytes = study.AlgoMinUnfusedBytes
	study.BlockSegmented.AlgoMinBytes = study.AlgoMinFusedBytes
	study.BlockFused.AlgoMinBytes = study.AlgoMinFusedBytes
	return study, nil
}

// FusionReduction reports the unfused/fused access ratio of the full block
// at a capacity (the paper: 2.5x at 50 MB, up to 5.6x at 320 MB).
func (s *BlockStudy) FusionReduction(bufBytes int64) (float64, bool) {
	u, ok1 := s.BlockUnfused.AccessesAt(bufBytes)
	f, ok2 := s.BlockSegmented.AccessesAt(bufBytes)
	if !ok1 || !ok2 || f == 0 {
		return 0, false
	}
	return float64(u) / float64(f), true
}

// MaxEffectualBufferBytes returns the capacity beyond which fusion stops
// helping the full block.
func (s *BlockStudy) MaxEffectualBufferBytes() int64 {
	return s.BlockSegmented.MaxEffectualBufferBytes()
}

// AbsoluteSavingsBytes is the access-count difference between unfused and
// fused execution at a capacity.
func (s *BlockStudy) AbsoluteSavingsBytes(bufBytes int64) (int64, bool) {
	u, ok1 := s.BlockUnfused.AccessesAt(bufBytes)
	f, ok2 := s.BlockSegmented.AccessesAt(bufBytes)
	if !ok1 || !ok2 {
		return 0, false
	}
	return u - f, true
}
