package llm

import (
	"testing"

	"repro/internal/bound"
)

func scaledConfig() Config {
	// 1/8-scale GPT-3-6.7b: seq 256, d 512, 32 heads of 16, hidden 2048.
	return GPT3_6_7B().Scaled(8)
}

func TestConfigValidate(t *testing.T) {
	if err := GPT3_6_7B().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := scaledConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := GPT3_6_7B()
	bad.HeadDim = 64
	if err := bad.Validate(); err == nil {
		t.Fatal("inconsistent head dims accepted")
	}
	bad = GPT3_6_7B()
	bad.Batch = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero batch accepted")
	}
}

func TestGPT3Shapes(t *testing.T) {
	c := GPT3_6_7B()
	if c.L() != 32768 {
		t.Fatalf("L = %d, want 32768", c.L())
	}
	q := c.QProj()
	if q.RankShape("M") != 32768 || q.RankShape("K") != 4096 || q.RankShape("N") != 4096 {
		t.Fatalf("Q_proj shape wrong: %s", q)
	}
	qk := c.BmmQK()
	if qk.RankShape("H") != 512 || qk.RankShape("M") != 2048 ||
		qk.RankShape("K") != 128 || qk.RankShape("N") != 2048 {
		t.Fatalf("bmm_QK shape wrong: %s", qk)
	}
	if len(c.AllEinsums()) != 8 {
		t.Fatalf("block should have 8 einsums, got %d", len(c.AllEinsums()))
	}
}

func TestBlockMACs(t *testing.T) {
	c := GPT3_6_7B()
	l, d, h := c.L(), c.D, c.Hidden
	want := 4*l*d*d + 2*l*d*h + 2*(c.Batch*c.Heads)*c.SeqLen*c.SeqLen*c.HeadDim
	if got := c.BlockMACs(); got != want {
		t.Fatalf("BlockMACs = %d, want %d", got, want)
	}
}

func TestSixEinsumChainWidths(t *testing.T) {
	chain := GPT3_6_7B().SixEinsumChain()
	if err := chain.Validate(); err != nil {
		t.Fatal(err)
	}
	if chain.Len() != 6 {
		t.Fatalf("chain has %d ops", chain.Len())
	}
	// bmm_QK rows carry full head-expanded scores.
	if chain.Ops[1].OutW != 32*2048 {
		t.Fatalf("bmm_QK OutW = %d, want %d", chain.Ops[1].OutW, 32*2048)
	}
	if !chain.Ops[1].NoOutputTiling || !chain.Ops[3].NoOutputTiling {
		t.Fatal("softmax/layernorm constraints missing")
	}
}

func TestBlockStudyScaled(t *testing.T) {
	c := scaledConfig()
	study, err := NewBlockStudy(c, bound.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// The fused chain bottoms out at the fused algorithmic minimum.
	if study.BlockSegmented.MinAccessBytes() != study.AlgoMinFusedBytes {
		t.Fatalf("segmented floor %d != fused algo min %d",
			study.BlockSegmented.MinAccessBytes(), study.AlgoMinFusedBytes)
	}
	// Fusion eliminates intermediates, so its floor is strictly below the
	// unfused algorithmic minimum.
	if study.AlgoMinFusedBytes >= study.AlgoMinUnfusedBytes {
		t.Fatal("fused algorithmic minimum should be below unfused")
	}
	// Segmented is pointwise at least as good as both extremes.
	for _, p := range study.ChainUnfused.Points() {
		got, ok := study.ChainSegmented.AccessesAt(p.BufferBytes)
		if !ok || got > p.AccessBytes {
			t.Fatalf("segmented (%d,%v) worse than unfused %+v", got, ok, p)
		}
	}
	for _, p := range study.ChainFused.Points() {
		got, ok := study.ChainSegmented.AccessesAt(p.BufferBytes)
		if !ok || got > p.AccessBytes {
			t.Fatalf("segmented (%d,%v) worse than fully fused %+v", got, ok, p)
		}
	}

	// At the maximal effectual buffer the fusion reduction is large (the
	// paper reports 5.6x at full scale; the scaled model must still show a
	// clear multiple).
	maxEff := study.MaxEffectualBufferBytes()
	red, ok := study.FusionReduction(maxEff)
	if !ok {
		t.Fatal("reduction probe infeasible")
	}
	if red < 1.5 {
		t.Fatalf("fusion reduction at max effectual buffer = %.2f, want > 1.5", red)
	}
	if sav, ok := study.AbsoluteSavingsBytes(maxEff); !ok || sav <= 0 {
		t.Fatalf("absolute savings = (%d,%v), want positive", sav, ok)
	}

	// At tiny capacities fusion should NOT dominate: the segmented curve
	// follows the unfused baseline (Fig. 21's small-buffer regime), so the
	// reduction there is ~1.
	smallBuf := study.ChainUnfused.MinBufferBytes() * 4
	if redSmall, ok := study.FusionReduction(smallBuf); ok && redSmall > red {
		t.Fatalf("reduction at small buffer (%.2f) exceeds max-effectual reduction (%.2f)",
			redSmall, red)
	}
}

func TestMHAConfigFromBlock(t *testing.T) {
	m := scaledConfig().MHA()
	if m.Instances != 16 || m.Seq != 256 || m.Heads != 32 || m.FeatureDim != 16 {
		t.Fatalf("MHA config = %+v", m)
	}
}

func TestScaledKeepsConsistency(t *testing.T) {
	s := GPT3_6_7B().Scaled(4)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.SeqLen != 512 || s.D != 1024 || s.HeadDim != 32 || s.Hidden != 4096 {
		t.Fatalf("Scaled(4) = %+v", s)
	}
}
