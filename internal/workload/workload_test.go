package workload

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/fusion"
	"repro/internal/multilevel"
	"repro/internal/pareto"
	"repro/internal/shard"
)

var update = flag.Bool("update", false, "rewrite golden spec files")

func testGEMM() *einsum.Einsum { return einsum.GEMM("gemm_64", 64, 64, 64) }

func testSmallGEMM() *einsum.Einsum { return einsum.GEMM("gemm_16", 16, 16, 16) }

func testChain(t *testing.T) *fusion.Chain {
	t.Helper()
	c, err := fusion.NewChain("ffn", 64,
		fusion.GEMMOp("mm_0", 64, 32, 48),
		fusion.GEMMOp("mm_1", 64, 48, 16))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func segChain(t *testing.T) *fusion.Chain {
	t.Helper()
	c, err := fusion.NewChain("mlp5", 16,
		fusion.GEMMOp("g0", 16, 4, 8),
		fusion.GEMMOp("g1", 16, 8, 8),
		fusion.GEMMOp("g2", 16, 8, 4),
		fusion.GEMMOp("g3", 16, 4, 8),
		fusion.GEMMOp("g4", 16, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func curveBytes(t *testing.T, c *pareto.Curve) string {
	t.Helper()
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// goldenSpecs are the four kinds' reference Specs; the segmentation one
// is deliberately unmaterialized (the schema clients author by hand).
func goldenSpecs(t *testing.T) map[string]*Spec {
	t.Helper()
	return map[string]*Spec{
		"bound":        NewBound(testGEMM(), bound.Options{ImperfectExtra: 2}),
		"multilevel":   NewMultiLevel(testSmallGEMM(), 1024),
		"fusion-tiled": NewFusionTiled(testChain(t)),
		"segmentation": NewSegmentation(segChain(t), nil),
	}
}

// TestSpecGoldenRoundTrip pins the canonical encoding of all four kinds
// byte for byte: Encode matches the checked-in golden file, Decode of
// the golden re-encodes to the same bytes, and a decoded Spec derives
// the same digests as the original.
func TestSpecGoldenRoundTrip(t *testing.T) {
	for name, spec := range goldenSpecs(t) {
		t.Run(name, func(t *testing.T) {
			enc, err := spec.Encode()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "spec_"+name+".json")
			if *update {
				if err := os.WriteFile(path, append(append([]byte{}, enc...), '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			golden, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			golden = bytes.TrimSuffix(golden, []byte("\n"))
			if !bytes.Equal(enc, golden) {
				t.Fatalf("canonical encoding drifted from golden\n got %s\nwant %s", enc, golden)
			}
			decoded, err := Decode(golden)
			if err != nil {
				t.Fatal(err)
			}
			re, err := decoded.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(re, golden) {
				t.Fatalf("decode/encode not byte-stable\n got %s\nwant %s", re, golden)
			}
		})
	}
}

// TestDecodeRejections pins the strictness contract: unknown kinds,
// unknown fields, kind-mismatched fields, trailing data, and structural
// garbage are all errors.
func TestDecodeRejections(t *testing.T) {
	valid, err := NewFusionTiled(testChain(t)).Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"unknown kind":   `{"kind":"frobnicate"}`,
		"unknown field":  strings.Replace(string(valid), `"kind"`, `"surprise":1,"kind"`, 1),
		"trailing data":  string(valid) + `{"kind":"bound"}`,
		"missing chain":  `{"kind":"fusion-tiled"}`,
		"cross-kind":     strings.Replace(string(valid), `"kind":"fusion-tiled"`, `"kind":"fusion-tiled","multilevel":{"l1_cap_bytes":1}`, 1),
		"not an object":  `[1,2,3]`,
		"torn json":      string(valid[:len(valid)/2]),
		"bound w/ chain": strings.Replace(string(valid), `"kind":"fusion-tiled"`, `"kind":"bound"`, 1),
	}
	for name, data := range cases {
		if _, err := Decode([]byte(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := Decode(valid); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestDigestParityWithLegacyBuilders pins Spec identity to the legacy
// job builders for every kind: same workload digest, same options
// digest, same index-space size — before and after a JSON round trip.
func TestDigestParityWithLegacyBuilders(t *testing.T) {
	e, ml, c := testGEMM(), testSmallGEMM(), testChain(t)
	sc := segChain(t)
	perOp := sc.PerOpCurves(bound.Options{Workers: 1})
	plan := shard.Plan{Index: 0, Count: 2}

	legacy := map[string]shard.Job{}
	if j, err := shard.BoundJob(e, bound.Options{ImperfectExtra: 2}, plan); err == nil {
		legacy["bound"] = j
	} else {
		t.Fatal(err)
	}
	if j, err := shard.MultiLevelJob(ml, 1024, multilevel.Options{}, plan); err == nil {
		legacy["multilevel"] = j
	} else {
		t.Fatal(err)
	}
	if j, err := shard.FusionTiledJob(c, plan, 1); err == nil {
		legacy["fusion-tiled"] = j
	} else {
		t.Fatal(err)
	}
	if j, err := shard.SegmentationJob(sc, perOp, plan, 1); err == nil {
		legacy["segmentation"] = j
	} else {
		t.Fatal(err)
	}

	specs := goldenSpecs(t)
	specs["segmentation"] = NewSegmentation(sc, perOp)
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			want := legacy[name]
			enc, err := spec.Encode()
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := Decode(enc)
			if err != nil {
				t.Fatal(err)
			}
			for label, s := range map[string]*Spec{"direct": spec, "round-tripped": s2(decoded)} {
				wd, od, err := s.Digests()
				if err != nil {
					t.Fatal(err)
				}
				if wd != want.WorkloadDigest || od != want.OptionsDigest {
					t.Fatalf("%s spec digests (%.12s…, %.12s…) != legacy builder (%.12s…, %.12s…)",
						label, wd, od, want.WorkloadDigest, want.OptionsDigest)
				}
				space, err := s.Space()
				if err != nil {
					t.Fatal(err)
				}
				if space != want.Items {
					t.Fatalf("%s spec space %d != legacy builder items %d", label, space, want.Items)
				}
				job, err := s.Compile(plan, Exec{Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				if job.WorkloadDigest != want.WorkloadDigest || job.OptionsDigest != want.OptionsDigest || job.Items != want.Items {
					t.Fatalf("%s compiled job identity differs from legacy builder", label)
				}
				if len(job.Spec) == 0 {
					t.Fatalf("%s compiled job carries no embedded spec", label)
				}
			}
		})
	}
}

// s2 is a typed identity helper so the map literal above can hold both
// the original and decoded Specs.
func s2(s *Spec) *Spec { return s }

// runSpecShards compiles every shard of an n-way plan from a freshly
// decoded copy of enc — the fleet-worker situation: nothing shared with
// the authoring context — and runs each through the file-backed path.
func runSpecShards(t *testing.T, dir string, enc []byte, n int) []string {
	t.Helper()
	paths := make([]string, n)
	for k := 0; k < n; k++ {
		decoded, err := Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		job, err := decoded.Compile(shard.Plan{Index: k, Count: n}, Exec{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		paths[k] = filepath.Join(dir, fmt.Sprintf("shard-%d-of-%d.json", k+1, n))
		if _, _, err := shard.Run(context.Background(), job, shard.RunOptions{Path: paths[k], CheckpointEvery: 3}); err != nil {
			t.Fatalf("shard %d/%d: %v", k+1, n, err)
		}
	}
	return paths
}

// TestSpecShardingParity pins the tentpole acceptance criterion for all
// four kinds: a Spec serialized to JSON, decoded in a fresh context and
// compiled through the registry yields sharded merges byte-identical to
// the legacy direct builders, for N ∈ {2, 4}.
func TestSpecShardingParity(t *testing.T) {
	e, ml, c := testGEMM(), testSmallGEMM(), testChain(t)
	sc := segChain(t)
	perOp := sc.PerOpCurves(bound.Options{Workers: 1})

	legacyMerge := func(mk func(shard.Plan) (shard.Job, error), n int) string {
		dir := t.TempDir()
		paths := make([]string, n)
		for k := 0; k < n; k++ {
			job, err := mk(shard.Plan{Index: k, Count: n})
			if err != nil {
				t.Fatal(err)
			}
			paths[k] = filepath.Join(dir, fmt.Sprintf("legacy-%d-of-%d.json", k+1, n))
			if _, _, err := shard.Run(context.Background(), job, shard.RunOptions{Path: paths[k], CheckpointEvery: 3}); err != nil {
				t.Fatal(err)
			}
		}
		merged, err := shard.MergeFiles(paths...)
		if err != nil {
			t.Fatal(err)
		}
		return curveBytes(t, merged)
	}

	kinds := []struct {
		name string
		spec *Spec
		mk   func(shard.Plan) (shard.Job, error)
	}{
		{"bound", NewBound(e, bound.Options{ImperfectExtra: 2}), func(p shard.Plan) (shard.Job, error) {
			return shard.BoundJob(e, bound.Options{ImperfectExtra: 2}, p)
		}},
		{"multilevel", NewMultiLevel(ml, 1024), func(p shard.Plan) (shard.Job, error) {
			return shard.MultiLevelJob(ml, 1024, multilevel.Options{}, p)
		}},
		{"fusion-tiled", NewFusionTiled(c), func(p shard.Plan) (shard.Job, error) {
			return shard.FusionTiledJob(c, p, 1)
		}},
		{"segmentation", NewSegmentation(sc, perOp), func(p shard.Plan) (shard.Job, error) {
			return shard.SegmentationJob(sc, perOp, p, 1)
		}},
	}
	for _, kind := range kinds {
		t.Run(kind.name, func(t *testing.T) {
			enc, err := kind.spec.Encode()
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{2, 4} {
				want := legacyMerge(kind.mk, n)
				paths := runSpecShards(t, t.TempDir(), enc, n)
				merged, err := shard.MergeFiles(paths...)
				if err != nil {
					t.Fatalf("N=%d: %v", n, err)
				}
				if got := curveBytes(t, merged); got != want {
					t.Fatalf("N=%d: spec-compiled merge differs from legacy builder merge\n got %s\nwant %s", n, got, want)
				}
			}
		})
	}
}

// TestKillAndResumeFromManifestSpecAlone pins the fleet-resume
// criterion: a shard killed mid-run is finished by a "process" that has
// only the partial-frontier file — the job is rebuilt via
// JobFromManifest from the manifest's embedded Spec, with no access to
// the original Spec, chain, or per-op curves. Segmentation is the
// demanding case (its per-op input curves travel inside the Spec);
// bound covers the plain path.
func TestKillAndResumeFromManifestSpecAlone(t *testing.T) {
	sc := segChain(t)
	perOp := sc.PerOpCurves(bound.Options{Workers: 1})
	kinds := []struct {
		name string
		spec *Spec
	}{
		{"bound", NewBound(testSmallGEMM(), bound.Options{})},
		{"segmentation", NewSegmentation(sc, perOp)},
	}
	for _, kind := range kinds {
		t.Run(kind.name, func(t *testing.T) {
			const n = 4
			enc, err := kind.spec.Encode()
			if err != nil {
				t.Fatal(err)
			}
			inProc, err := kind.spec.Run(context.Background(), Exec{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			want := curveBytes(t, inProc.Curve)

			dir := t.TempDir()
			paths := make([]string, n)
			for k := 0; k < n; k++ {
				decoded, err := Decode(enc)
				if err != nil {
					t.Fatal(err)
				}
				job, err := decoded.Compile(shard.Plan{Index: k, Count: n}, Exec{Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				paths[k] = filepath.Join(dir, fmt.Sprintf("shard-%d-of-%d.json", k+1, n))
				if k != 1 {
					if _, _, err := shard.Run(context.Background(), job, shard.RunOptions{Path: paths[k], CheckpointEvery: 1}); err != nil {
						t.Fatal(err)
					}
					continue
				}

				// Kill shard 2 after its first flush...
				ctx, cancel := context.WithCancel(context.Background())
				_, _, err = shard.Run(ctx, job, shard.RunOptions{
					Path:            paths[k],
					CheckpointEvery: 1,
					OnCheckpoint:    func(shard.Manifest) { cancel() },
				})
				cancel()
				if err == nil {
					t.Fatal("killed run reported success")
				}
				killed, rerr := shard.ReadPartial(paths[k])
				if rerr != nil {
					t.Fatalf("no resumable checkpoint after kill: %v", rerr)
				}
				if killed.Manifest.Complete() {
					t.Fatal("kill point was after shard completion; shrink the space or CheckpointEvery")
				}

				// ...and finish it from the manifest alone.
				rebuilt, spec, err := JobFromManifest(&killed.Manifest, Exec{Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				if spec.Kind != kind.spec.Kind {
					t.Fatalf("manifest spec kind %q, want %q", spec.Kind, kind.spec.Kind)
				}
				_, stats, err := shard.Run(context.Background(), rebuilt, shard.RunOptions{Path: paths[k], CheckpointEvery: 1})
				if err != nil {
					t.Fatal(err)
				}
				if !stats.Resumed || stats.ResumedFrom != killed.Manifest.CompletedThrough {
					t.Fatalf("manifest-rebuilt job did not resume at checkpoint: stats %+v, checkpoint at %d",
						stats, killed.Manifest.CompletedThrough)
				}
			}
			merged, err := shard.MergeFiles(paths...)
			if err != nil {
				t.Fatal(err)
			}
			if got := curveBytes(t, merged); got != want {
				t.Fatalf("manifest-resumed merge differs from in-process run\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestJobFromManifestGuards pins the failure modes: legacy manifests
// without a Spec are ErrNoSpec, and a manifest whose digests disagree
// with its embedded Spec is rejected.
func TestJobFromManifestGuards(t *testing.T) {
	spec := NewBound(testSmallGEMM(), bound.Options{})
	job, err := spec.Compile(shard.Plan{Index: 0, Count: 2}, Exec{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := job.Plan.Slice(job.Items)
	m := shard.Manifest{
		FormatVersion:    shard.FormatVersion,
		Engine:           shard.Engine,
		Kind:             job.Kind,
		Workload:         job.Workload,
		WorkloadDigest:   job.WorkloadDigest,
		OptionsDigest:    job.OptionsDigest,
		ShardIndex:       job.Plan.Index,
		ShardCount:       job.Plan.Count,
		Items:            job.Items,
		RangeLo:          lo,
		RangeHi:          hi,
		CompletedThrough: lo,
		Spec:             job.Spec,
	}
	if _, _, err := JobFromManifest(&m, Exec{}); err != nil {
		t.Fatalf("well-formed manifest rejected: %v", err)
	}

	legacy := m
	legacy.FormatVersion = shard.MinFormatVersion
	legacy.Spec = nil
	if _, _, err := JobFromManifest(&legacy, Exec{}); !errors.Is(err, ErrNoSpec) {
		t.Fatalf("legacy manifest error = %v, want ErrNoSpec", err)
	}

	tampered := m
	tampered.WorkloadDigest = shard.Digest("someone else's workload")
	if _, _, err := JobFromManifest(&tampered, Exec{}); err == nil {
		t.Fatal("digest-mismatched manifest accepted")
	}

	wrongKind := m
	wrongKind.Kind = shard.KindFusionTiled
	if _, _, err := JobFromManifest(&wrongKind, Exec{}); err == nil {
		t.Fatal("kind-mismatched manifest accepted")
	}
}

// TestMaterializeSegmentation pins the materialization contract: the
// per-op curves Materialize derives equal the chain's direct
// PerOpCurves, an already materialized Spec is returned as-is, and an
// unmaterialized Spec refuses to digest or compile with
// ErrUnmaterialized.
func TestMaterializeSegmentation(t *testing.T) {
	sc := segChain(t)
	bare := NewSegmentation(sc, nil)
	if _, _, err := bare.Digests(); !errors.Is(err, ErrUnmaterialized) {
		t.Fatalf("unmaterialized digest error = %v, want ErrUnmaterialized", err)
	}
	if _, err := bare.Compile(shard.Plan{Index: 0, Count: 1}, Exec{}); !errors.Is(err, ErrUnmaterialized) {
		t.Fatalf("unmaterialized compile error = %v, want ErrUnmaterialized", err)
	}

	mat, err := bare.Materialize(context.Background(), Exec{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := sc.PerOpCurves(bound.Options{Workers: 1})
	if len(mat.PerOp) != len(want) {
		t.Fatalf("materialized %d per-op curves, want %d", len(mat.PerOp), len(want))
	}
	for i := range want {
		if curveBytes(t, mat.PerOp[i]) != curveBytes(t, want[i]) {
			t.Fatalf("materialized per-op curve %d differs from direct derivation", i)
		}
	}
	if bare.PerOp != nil {
		t.Fatal("Materialize mutated its input spec")
	}
	again, err := mat.Materialize(context.Background(), Exec{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if again != mat {
		t.Fatal("materializing a materialized spec did not return it unchanged")
	}
}

// TestRegistry pins the registry contract: the four paper kinds are
// registered, unknown kinds error, and duplicate registration errors.
func TestRegistry(t *testing.T) {
	want := []shard.Kind{shard.KindBound, shard.KindFusionTiled, shard.KindMultiLevel, shard.KindSegmentation}
	got := Default.Kinds()
	if len(got) != len(want) {
		t.Fatalf("Default registry has kinds %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Default registry has kinds %v, want %v", got, want)
		}
	}
	if _, err := Lookup("frobnicate"); err == nil {
		t.Fatal("unknown kind resolved")
	}
	r := NewRegistry()
	if err := r.Register(shard.KindBound, boundEngine{}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(shard.KindBound, boundEngine{}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}
