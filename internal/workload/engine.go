package workload

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bound"
	"repro/internal/fusion"
	"repro/internal/multilevel"
	"repro/internal/pareto"
	"repro/internal/shard"
)

// Engine implements one derivation path over Specs. Engines are
// stateless; everything result-affecting is in the Spec and everything
// execution-tuning is in Exec, so the same Spec compiled by any engine
// instance anywhere yields merge-compatible shard jobs.
type Engine interface {
	// Validate checks that the Spec is complete and well-formed for this
	// engine: the right workload field set, no fields of other kinds,
	// and structurally valid workload/options.
	Validate(s *Spec) error

	// Canonical returns the Spec's canonical workload and options
	// encodings — the strings the shard digests hash. It returns
	// ErrUnmaterialized when the encodings depend on derived inputs the
	// Spec does not carry yet (segmentation per-op curves).
	Canonical(s *Spec) (workload, options string, err error)

	// Describe renders the human-readable workload label — the same
	// string the compiled job stamps into manifests and the serve layer
	// reports as the response's workload field. Informational only;
	// identity lives in Canonical.
	Describe(s *Spec) string

	// Space returns the size of the flat enumeration space shard plans
	// slice.
	Space(s *Spec) (int64, error)

	// Materialize derives any inputs the Spec needs before it can be
	// compiled (the segmentation study's per-op curves), returning a
	// Spec that carries them. Specs that need nothing are returned
	// unchanged; an already materialized Spec is never re-derived.
	Materialize(ctx context.Context, s *Spec, exec Exec) (*Spec, error)

	// Compile builds the shard job for one plan slice of the Spec's
	// space, with the canonically encoded Spec embedded so every
	// checkpoint manifest can rebuild the job (JobFromManifest).
	Compile(s *Spec, plan shard.Plan, exec Exec) (shard.Job, error)

	// Run derives the Spec's full space in-process.
	Run(ctx context.Context, s *Spec, exec Exec) (*Result, error)
}

// Result is what an in-process Run produces: the frontier, the number of
// index-space points evaluated, and — for segmentation studies only —
// the per-strategy curves.
type Result struct {
	// Curve is the derived frontier (the DRAM curve for multilevel, the
	// capacity-wise best curve for segmentation).
	Curve *pareto.Curve
	// Evaluated counts the enumeration indices evaluated.
	Evaluated int64
	// Segments holds one entry per segmentation strategy, in mask order;
	// nil for every other kind.
	Segments []Segment
}

// Segment is one segmentation strategy's curve. The JSON layout is the
// serve response envelope's segment entry (internal/serve aliases its
// SegmentResult to this type), so in-process and served segmentation
// studies render identically.
type Segment struct {
	// Label renders the strategy's op spans, e.g. "[0:1)[1:3)".
	Label string `json:"label"`
	// Cuts are the first op indices of every segment after the first.
	Cuts []int `json:"cuts,omitempty"`
	// Points is the number of frontier breakpoints in Curve.
	Points int `json:"points"`
	// Curve is the strategy's frontier.
	Curve *pareto.Curve `json:"curve"`
}

// Registry maps derivation kinds to engines. The zero value is empty;
// Default holds the four paper engines. New derivation paths plug in
// with one Register call instead of per-layer wiring.
type Registry struct {
	engines map[shard.Kind]Engine
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{engines: map[shard.Kind]Engine{}}
}

// Register adds an engine for kind, rejecting duplicates.
func (r *Registry) Register(kind shard.Kind, e Engine) error {
	if r.engines == nil {
		r.engines = map[shard.Kind]Engine{}
	}
	if _, dup := r.engines[kind]; dup {
		return fmt.Errorf("workload: kind %q registered twice", kind)
	}
	r.engines[kind] = e
	return nil
}

// Lookup returns the engine for kind, or an error naming the kind and
// the registered alternatives.
func (r *Registry) Lookup(kind shard.Kind) (Engine, error) {
	if e, ok := r.engines[kind]; ok {
		return e, nil
	}
	return nil, fmt.Errorf("workload: unknown kind %q (registered: %v)", kind, r.Kinds())
}

// Kinds returns the registered kinds in sorted order.
func (r *Registry) Kinds() []shard.Kind {
	ks := make([]shard.Kind, 0, len(r.engines))
	for k := range r.engines {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// Default is the registry holding the paper's four derivation engines.
var Default = func() *Registry {
	r := NewRegistry()
	for kind, e := range map[shard.Kind]Engine{
		shard.KindBound:        boundEngine{},
		shard.KindMultiLevel:   multiLevelEngine{},
		shard.KindFusionTiled:  fusionTiledEngine{},
		shard.KindSegmentation: segmentationEngine{},
	} {
		if err := r.Register(kind, e); err != nil {
			panic(err)
		}
	}
	return r
}()

// Lookup is Default.Lookup.
func Lookup(kind shard.Kind) (Engine, error) { return Default.Lookup(kind) }

// Describe renders the Spec's human-readable workload label through its
// engine in the default registry ("<unknown kind>" when unregistered).
func (s *Spec) Describe() string {
	eng, err := Lookup(s.Kind)
	if err != nil {
		return fmt.Sprintf("<unknown kind %q>", s.Kind)
	}
	return eng.Describe(s)
}

// Materialize derives the Spec's missing inputs through its engine in
// the default registry.
func (s *Spec) Materialize(ctx context.Context, exec Exec) (*Spec, error) {
	eng, err := Lookup(s.Kind)
	if err != nil {
		return nil, err
	}
	return eng.Materialize(ctx, s, exec)
}

// Compile builds the Spec's shard job for one plan slice through its
// engine in the default registry.
func (s *Spec) Compile(plan shard.Plan, exec Exec) (shard.Job, error) {
	eng, err := Lookup(s.Kind)
	if err != nil {
		return shard.Job{}, err
	}
	return eng.Compile(s, plan, exec)
}

// Run derives the Spec's full space in-process through its engine in the
// default registry.
func (s *Spec) Run(ctx context.Context, exec Exec) (*Result, error) {
	eng, err := Lookup(s.Kind)
	if err != nil {
		return nil, err
	}
	return eng.Run(ctx, s, exec)
}

// withSpec embeds the canonical Spec encoding into a compiled job so
// every checkpoint manifest carries it.
func withSpec(s *Spec, job shard.Job, err error) (shard.Job, error) {
	if err != nil {
		return shard.Job{}, err
	}
	enc, err := s.Encode()
	if err != nil {
		return shard.Job{}, err
	}
	job.Spec = enc
	return job, nil
}

// requireOnly rejects Spec fields that do not belong to the kind under
// validation, so a bound Spec with a stray chain (or vice versa) fails
// loudly instead of being silently ignored.
func requireOnly(s *Spec, einsumOK, chainOK, boundOK, multiLevelOK, perOpOK bool) error {
	if !einsumOK && s.Einsum != nil {
		return fmt.Errorf("workload: kind %q does not take an einsum", s.Kind)
	}
	if !chainOK && s.Chain != nil {
		return fmt.Errorf("workload: kind %q does not take a chain", s.Kind)
	}
	if !boundOK && s.Bound != nil {
		return fmt.Errorf("workload: kind %q does not take bound options", s.Kind)
	}
	if !multiLevelOK && s.MultiLevel != nil {
		return fmt.Errorf("workload: kind %q does not take multilevel options", s.Kind)
	}
	if !perOpOK && s.PerOp != nil {
		return fmt.Errorf("workload: kind %q does not take per-op curves", s.Kind)
	}
	return nil
}

// boundEngine is the two-level bound derivation (bound.DeriveRange over
// a single Einsum's mapspace).
type boundEngine struct{}

// boundOpts assembles the full bound.Options from the Spec's
// result-affecting fields plus the execution knobs.
func boundOpts(s *Spec, exec Exec) bound.Options {
	o := bound.Options{Workers: exec.Workers}
	if s.Bound != nil {
		o.ImperfectExtra = s.Bound.ImperfectExtra
		o.ChargeSpills = s.Bound.ChargeSpills
	}
	return o
}

// Validate implements Engine.
func (boundEngine) Validate(s *Spec) error {
	if err := requireOnly(s, true, false, true, false, false); err != nil {
		return err
	}
	if s.Einsum == nil {
		return fmt.Errorf("workload: kind %q needs an einsum", s.Kind)
	}
	if err := s.Einsum.Validate(); err != nil {
		return err
	}
	return boundOpts(s, Exec{}).Validate()
}

// Canonical implements Engine.
func (boundEngine) Canonical(s *Spec) (string, string, error) {
	return s.Einsum.Canonical(), boundOpts(s, Exec{}).Canonical(), nil
}

// Describe implements Engine.
func (boundEngine) Describe(s *Spec) string { return s.Einsum.String() }

// Space implements Engine.
func (e boundEngine) Space(s *Spec) (int64, error) {
	if err := e.Validate(s); err != nil {
		return 0, err
	}
	return bound.Space(s.Einsum, boundOpts(s, Exec{})), nil
}

// Materialize implements Engine; bound Specs need nothing derived.
func (boundEngine) Materialize(_ context.Context, s *Spec, _ Exec) (*Spec, error) {
	return s, nil
}

// Compile implements Engine.
func (boundEngine) Compile(s *Spec, plan shard.Plan, exec Exec) (shard.Job, error) {
	job, err := shard.BoundJob(s.Einsum, boundOpts(s, exec), plan)
	return withSpec(s, job, err)
}

// Run implements Engine.
func (e boundEngine) Run(ctx context.Context, s *Spec, exec Exec) (*Result, error) {
	space, err := e.Space(s)
	if err != nil {
		return nil, err
	}
	r, err := bound.DeriveRange(ctx, s.Einsum, boundOpts(s, exec), 0, space)
	if err != nil {
		return nil, err
	}
	return &Result{Curve: r.Curve, Evaluated: r.Stats.MappingsEvaluated}, nil
}

// multiLevelEngine is the three-level (L1/L2/DRAM) joint bound
// derivation; the result curve is the DRAM frontier.
type multiLevelEngine struct{}

// Validate implements Engine.
func (multiLevelEngine) Validate(s *Spec) error {
	if err := requireOnly(s, true, false, false, true, false); err != nil {
		return err
	}
	if s.Einsum == nil {
		return fmt.Errorf("workload: kind %q needs an einsum", s.Kind)
	}
	if err := s.Einsum.Validate(); err != nil {
		return err
	}
	if s.MultiLevel == nil {
		return fmt.Errorf("workload: kind %q needs multilevel options", s.Kind)
	}
	if s.MultiLevel.L1CapBytes < 1 {
		return fmt.Errorf("workload: multilevel l1_cap_bytes %d, want >= 1", s.MultiLevel.L1CapBytes)
	}
	return nil
}

// Canonical implements Engine.
func (multiLevelEngine) Canonical(s *Spec) (string, string, error) {
	return s.Einsum.Canonical(), shard.MultiLevelCanonical(s.MultiLevel.L1CapBytes), nil
}

// Describe implements Engine.
func (multiLevelEngine) Describe(s *Spec) string {
	return fmt.Sprintf("%s three-level L1=%dB", s.Einsum.String(), s.MultiLevel.L1CapBytes)
}

// Space implements Engine.
func (e multiLevelEngine) Space(s *Spec) (int64, error) {
	if err := e.Validate(s); err != nil {
		return 0, err
	}
	return multilevel.Space(s.Einsum)
}

// Materialize implements Engine; multilevel Specs need nothing derived.
func (multiLevelEngine) Materialize(_ context.Context, s *Spec, _ Exec) (*Spec, error) {
	return s, nil
}

// Compile implements Engine.
func (multiLevelEngine) Compile(s *Spec, plan shard.Plan, exec Exec) (shard.Job, error) {
	job, err := shard.MultiLevelJob(s.Einsum, s.MultiLevel.L1CapBytes, multilevel.Options{Workers: exec.Workers}, plan)
	return withSpec(s, job, err)
}

// Run implements Engine.
func (e multiLevelEngine) Run(ctx context.Context, s *Spec, exec Exec) (*Result, error) {
	space, err := e.Space(s)
	if err != nil {
		return nil, err
	}
	r, err := multilevel.DeriveRange(ctx, s.Einsum, s.MultiLevel.L1CapBytes, 0, space, multilevel.Options{Workers: exec.Workers})
	if err != nil {
		return nil, err
	}
	return &Result{Curve: r.DRAM, Evaluated: r.Mappings}, nil
}

// fusionTiledEngine is the tiled-fusion sweep over a chain's FFMT
// template space.
type fusionTiledEngine struct{}

// Validate implements Engine.
func (fusionTiledEngine) Validate(s *Spec) error {
	if err := requireOnly(s, false, true, false, false, false); err != nil {
		return err
	}
	if s.Chain == nil {
		return fmt.Errorf("workload: kind %q needs a chain", s.Kind)
	}
	return s.Chain.Validate()
}

// Canonical implements Engine.
func (fusionTiledEngine) Canonical(s *Spec) (string, string, error) {
	return s.Chain.Canonical(), "fusion-tiled{}", nil
}

// Describe implements Engine.
func (fusionTiledEngine) Describe(s *Spec) string {
	return fmt.Sprintf("%s: %d ops over M=%d", s.Chain.Name, len(s.Chain.Ops), s.Chain.M)
}

// Space implements Engine.
func (e fusionTiledEngine) Space(s *Spec) (int64, error) {
	if err := e.Validate(s); err != nil {
		return 0, err
	}
	return fusion.TiledFusionSpace(s.Chain)
}

// Materialize implements Engine; tiled-fusion Specs need nothing
// derived.
func (fusionTiledEngine) Materialize(_ context.Context, s *Spec, _ Exec) (*Spec, error) {
	return s, nil
}

// Compile implements Engine.
func (fusionTiledEngine) Compile(s *Spec, plan shard.Plan, exec Exec) (shard.Job, error) {
	job, err := shard.FusionTiledJob(s.Chain, plan, exec.Workers)
	return withSpec(s, job, err)
}

// Run implements Engine.
func (e fusionTiledEngine) Run(ctx context.Context, s *Spec, exec Exec) (*Result, error) {
	space, err := e.Space(s)
	if err != nil {
		return nil, err
	}
	curve, ts, err := fusion.TiledFusionRange(ctx, s.Chain, 0, space, exec.Workers)
	if err != nil {
		return nil, err
	}
	return &Result{Curve: curve, Evaluated: ts.Evaluated}, nil
}

// segmentationEngine is the segmentation study over a chain's 2^(n-1)
// cut-pattern masks. Its per-op standalone curves are derivation inputs
// (part of the workload digest); an unmaterialized Spec carries only the
// chain and derives them on Materialize with default bound options, so
// they — and hence the digests — are a pure function of the chain.
type segmentationEngine struct{}

// Validate implements Engine.
func (segmentationEngine) Validate(s *Spec) error {
	if err := requireOnly(s, false, true, false, false, true); err != nil {
		return err
	}
	if s.Chain == nil {
		return fmt.Errorf("workload: kind %q needs a chain", s.Kind)
	}
	if err := s.Chain.Validate(); err != nil {
		return err
	}
	if s.PerOp != nil {
		if len(s.PerOp) != len(s.Chain.Ops) {
			return fmt.Errorf("workload: segmentation has %d per-op curves for a %d-op chain", len(s.PerOp), len(s.Chain.Ops))
		}
		for i, cv := range s.PerOp {
			if cv == nil {
				return fmt.Errorf("workload: segmentation per-op curve %d is nil", i)
			}
		}
	}
	return nil
}

// Canonical implements Engine. The workload encoding includes the
// per-op curves, so it needs a materialized Spec.
func (segmentationEngine) Canonical(s *Spec) (string, string, error) {
	if s.PerOp == nil {
		return "", "", fmt.Errorf("workload: segmentation canonical encoding needs per-op curves: %w", ErrUnmaterialized)
	}
	return shard.SegmentationCanonical(s.Chain, s.PerOp), "segmentation{}", nil
}

// Describe implements Engine.
func (segmentationEngine) Describe(s *Spec) string {
	return fmt.Sprintf("%s: %d-op segmentation study over M=%d", s.Chain.Name, len(s.Chain.Ops), s.Chain.M)
}

// Space implements Engine.
func (e segmentationEngine) Space(s *Spec) (int64, error) {
	if err := e.Validate(s); err != nil {
		return 0, err
	}
	return fusion.SegmentationSpace(s.Chain)
}

// Materialize implements Engine: it derives each op's standalone
// ski-slope curve (default bound options — no result-affecting fields
// set) and returns a Spec carrying them. Already materialized Specs are
// returned unchanged, so embedded-Spec resumes never re-derive inputs.
func (e segmentationEngine) Materialize(ctx context.Context, s *Spec, exec Exec) (*Spec, error) {
	if err := e.Validate(s); err != nil {
		return nil, err
	}
	if s.PerOp != nil {
		return s, nil
	}
	opts := bound.Options{Workers: exec.Workers}
	curves := make([]*pareto.Curve, len(s.Chain.Ops))
	for i := range s.Chain.Ops {
		ref := s.Chain.Ops[i].Ref
		r, err := bound.DeriveRange(ctx, ref, opts, 0, bound.Space(ref, opts))
		if err != nil {
			return nil, fmt.Errorf("workload: per-op curve %d (%s): %w", i, ref.String(), err)
		}
		curves[i] = r.Curve
	}
	m := *s
	m.PerOp = curves
	return &m, nil
}

// Compile implements Engine; it needs a materialized Spec.
func (segmentationEngine) Compile(s *Spec, plan shard.Plan, exec Exec) (shard.Job, error) {
	if s.PerOp == nil {
		return shard.Job{}, fmt.Errorf("workload: compiling segmentation job: %w", ErrUnmaterialized)
	}
	job, err := shard.SegmentationJob(s.Chain, s.PerOp, plan, exec.Workers)
	return withSpec(s, job, err)
}

// Run implements Engine: the full per-strategy study, with the
// capacity-wise best curve annotated the way the serve layer has always
// reported it (fused algorithmic minimum, unfused total operand bytes).
func (e segmentationEngine) Run(ctx context.Context, s *Spec, exec Exec) (*Result, error) {
	m, err := e.Materialize(ctx, s, exec)
	if err != nil {
		return nil, err
	}
	study, ts, err := fusion.SegmentationStudyContext(ctx, m.Chain, m.PerOp, exec.Workers)
	if err != nil {
		return nil, err
	}
	curves := make([]*pareto.Curve, len(study))
	segments := make([]Segment, len(study))
	for i, sr := range study {
		curves[i] = sr.Curve
		segments[i] = Segment{
			Label:  sr.Label,
			Cuts:   sr.Segmentation.Cuts,
			Points: sr.Curve.Len(),
			Curve:  sr.Curve,
		}
	}
	best := pareto.MergeMin(curves...)
	best.AlgoMinBytes = m.Chain.FusedAlgoMinBytes()
	best.TotalOperandBytes = m.Chain.UnfusedAlgoMinBytes()
	return &Result{Curve: best, Evaluated: ts.Evaluated, Segments: segments}, nil
}
