package workload

import (
	"errors"
	"fmt"

	"repro/internal/shard"
)

// ErrNoSpec marks a manifest that carries no embedded Spec — a legacy
// format-version-1 partial. Such shards still merge when complete, but
// only the process that built the job can finish an incomplete one.
var ErrNoSpec = errors.New("workload: manifest carries no spec (legacy format); the job cannot be rebuilt from the artifact alone")

// JobFromManifest rebuilds a shard job from a partial-frontier manifest
// alone: it decodes the embedded Spec, compiles it through the default
// registry for the manifest's plan slot, and cross-checks the compiled
// job's identity (kind, digests, index-space size) against the
// manifest, so a tampered or mismatched artifact is rejected instead of
// resumed into a poisoned curve. This is the resume path for processes
// that never saw the original request: shardmerge -resume and the
// server's spool-orphan recovery.
func JobFromManifest(m *shard.Manifest, exec Exec) (shard.Job, *Spec, error) {
	if len(m.Spec) == 0 {
		return shard.Job{}, nil, fmt.Errorf("workload: shard %d/%d of %q: %w", m.ShardIndex+1, m.ShardCount, m.Workload, ErrNoSpec)
	}
	s, err := Decode(m.Spec)
	if err != nil {
		return shard.Job{}, nil, err
	}
	if s.Kind != m.Kind {
		return shard.Job{}, nil, fmt.Errorf("workload: manifest kind %q but embedded spec kind %q", m.Kind, s.Kind)
	}
	job, err := s.Compile(shard.Plan{Index: m.ShardIndex, Count: m.ShardCount}, exec)
	if err != nil {
		return shard.Job{}, nil, err
	}
	switch {
	case job.WorkloadDigest != m.WorkloadDigest:
		return shard.Job{}, nil, fmt.Errorf("workload: embedded spec compiles to workload digest %.12s…, manifest has %.12s…",
			job.WorkloadDigest, m.WorkloadDigest)
	case job.OptionsDigest != m.OptionsDigest:
		return shard.Job{}, nil, fmt.Errorf("workload: embedded spec compiles to options digest %.12s…, manifest has %.12s…",
			job.OptionsDigest, m.OptionsDigest)
	case job.Items != m.Items:
		return shard.Job{}, nil, fmt.Errorf("workload: embedded spec compiles to %d items, manifest has %d", job.Items, m.Items)
	}
	return job, s, nil
}
