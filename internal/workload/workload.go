// Package workload makes derivations first-class values: a Spec is a
// JSON-serializable, canonically encoded description of one derivation —
// the kind, the workload (Einsum or chain) and the result-affecting
// options, exactly the fields the shard digests already hash — and an
// Engine turns a Spec into work: an in-process run, or a compiled
// shard.Job for the sharded/supervised/served paths.
//
// The Spec is the wire contract of the ROADMAP's distributed derivation
// fleet: a coordinator ships a Spec (plus a shard plan) to a worker, the
// worker compiles it through the Registry, and the resulting partial
// frontiers merge byte-identically with everyone else's because identity
// lives in the canonical encodings, not in any process state. The same
// mechanism makes orphaned work self-describing — shard manifests
// (internal/shard) and server spool directories (internal/serve) embed
// the Spec, so a resuming process rebuilds the job from the artifact
// alone, without the original request. See docs/workload-spec.md for the
// schema and the registry contract.
//
// Execution knobs that do not affect results (worker counts) are
// deliberately not part of the Spec; they travel separately as Exec.
package workload

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/fusion"
	"repro/internal/pareto"
	"repro/internal/shard"
)

// ErrUnmaterialized marks an operation that needs derived inputs the
// Spec does not carry yet: a segmentation Spec without its per-op curves
// cannot be compiled into a shard job or canonically digested until
// Materialize has filled them in.
var ErrUnmaterialized = errors.New("workload: spec is missing derived inputs; run Materialize first")

// Spec is one derivation, described completely and serializably: which
// derivation path (Kind), over which workload (exactly one of Einsum or
// Chain), under which result-affecting options. Two Specs with equal
// canonical encodings denote the same derivation and produce
// byte-identical curves on any machine and worker count.
//
// The JSON field set is strict in both directions: Decode rejects
// unknown fields, and every engine's Validate rejects fields that do not
// belong to the Spec's kind, so a typo or a mismatched option degrades
// to an error instead of a silently different derivation.
type Spec struct {
	// Kind selects the derivation path (shard.KindBound,
	// shard.KindFusionTiled, shard.KindMultiLevel,
	// shard.KindSegmentation) and thereby the engine.
	Kind shard.Kind `json:"kind"`

	// Einsum is the workload of the single-Einsum kinds (bound,
	// multilevel), encoded structurally — name, ranks in declaration
	// order, tensor projections, element size — so it round-trips
	// exactly (the textual expression syntax does not: it loses the
	// declared rank order and element size).
	Einsum *einsum.Einsum `json:"einsum,omitempty"`

	// Chain is the workload of the chain kinds (fusion-tiled,
	// segmentation).
	Chain *fusion.Chain `json:"chain,omitempty"`

	// Bound carries the result-affecting two-level bound options; only
	// valid (and optional) for kind "bound".
	Bound *BoundOptions `json:"bound,omitempty"`

	// MultiLevel carries the three-level derivation's options; required
	// for kind "multilevel".
	MultiLevel *MultiLevelOptions `json:"multilevel,omitempty"`

	// PerOp holds the segmentation study's per-op standalone curves —
	// derivation inputs that are part of the workload digest. They are a
	// pure function of the chain (derived with default bound options),
	// so Materialize can fill them in; a materialized Spec embedded in a
	// shard manifest lets a resuming process skip re-deriving them.
	// Only valid for kind "segmentation".
	PerOp []*pareto.Curve `json:"per_op,omitempty"`
}

// BoundOptions mirrors the result-affecting fields of bound.Options.
// Worker counts are execution knobs (results are worker-agnostic) and
// deliberately absent.
type BoundOptions struct {
	// ImperfectExtra widens the mapspace with that many imperfect
	// (non-divisor) tile sizes per rank.
	ImperfectExtra int `json:"imperfect_extra,omitempty"`
	// ChargeSpills switches to physical partial-sum accounting.
	ChargeSpills bool `json:"charge_spills,omitempty"`
}

// MultiLevelOptions selects the three-level derivation's configuration.
type MultiLevelOptions struct {
	// L1CapBytes is the innermost-buffer capacity gating mapping
	// feasibility; must be >= 1. It is part of the derivation's identity
	// (the options digest).
	L1CapBytes int64 `json:"l1_cap_bytes"`
}

// Exec carries the execution knobs that tune how a derivation runs
// without affecting what it computes. Kept out of the Spec so identical
// Specs stay identical across differently provisioned workers.
type Exec struct {
	// Workers sets the number of parallel evaluation goroutines; zero
	// means GOMAXPROCS.
	Workers int
}

// NewBound builds the Spec of a two-level bound derivation over e. Only
// the result-affecting fields of opts are captured; Workers is dropped.
func NewBound(e *einsum.Einsum, opts bound.Options) *Spec {
	s := &Spec{Kind: shard.KindBound, Einsum: e}
	if opts.ImperfectExtra != 0 || opts.ChargeSpills {
		s.Bound = &BoundOptions{ImperfectExtra: opts.ImperfectExtra, ChargeSpills: opts.ChargeSpills}
	}
	return s
}

// NewMultiLevel builds the Spec of a three-level (L1/L2/DRAM) derivation
// over e with the given L1 capacity.
func NewMultiLevel(e *einsum.Einsum, l1CapBytes int64) *Spec {
	return &Spec{Kind: shard.KindMultiLevel, Einsum: e, MultiLevel: &MultiLevelOptions{L1CapBytes: l1CapBytes}}
}

// NewFusionTiled builds the Spec of a chain's tiled-fusion (FFMT
// template) sweep.
func NewFusionTiled(c *fusion.Chain) *Spec {
	return &Spec{Kind: shard.KindFusionTiled, Chain: c}
}

// NewSegmentation builds the Spec of a chain's segmentation study.
// perOp may be nil — an unmaterialized Spec; Materialize derives the
// per-op curves before the Spec is compiled or digested.
func NewSegmentation(c *fusion.Chain, perOp []*pareto.Curve) *Spec {
	return &Spec{Kind: shard.KindSegmentation, Chain: c, PerOp: perOp}
}

// Validate checks the Spec against its kind's engine: known kind,
// exactly the fields that kind uses, and a structurally valid workload.
func (s *Spec) Validate() error {
	eng, err := Lookup(s.Kind)
	if err != nil {
		return err
	}
	return eng.Validate(s)
}

// Encode renders the Spec as its canonical JSON: validated, normalized
// (an all-default Bound options object is dropped), and marshalled with
// Go's deterministic struct-field order, so equal Specs encode to equal
// bytes. The result is what shard manifests and spool spec.json files
// embed.
func (s *Spec) Encode() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c := *s
	if c.Bound != nil && *c.Bound == (BoundOptions{}) {
		c.Bound = nil
	}
	data, err := json.Marshal(&c)
	if err != nil {
		return nil, fmt.Errorf("workload: encoding spec: %w", err)
	}
	return data, nil
}

// Decode parses and validates a Spec from JSON. Unknown top-level fields
// and unknown kinds are rejected — a Spec from a newer schema fails
// loudly instead of deriving something subtly different.
func Decode(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("workload: decoding spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("workload: decoding spec: trailing data after JSON object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Digests returns the Spec's workload and options digests — the same
// values the legacy shard job builders stamp into partial-frontier
// manifests, computed from the engine's canonical encodings. For
// segmentation Specs this requires the per-op curves (ErrUnmaterialized
// otherwise).
func (s *Spec) Digests() (workloadDigest, optionsDigest string, err error) {
	eng, err := Lookup(s.Kind)
	if err != nil {
		return "", "", err
	}
	w, o, err := eng.Canonical(s)
	if err != nil {
		return "", "", err
	}
	return shard.Digest(w), shard.Digest(o), nil
}

// Space returns the size of the Spec's flat enumeration space — the
// Items every shard plan slices.
func (s *Spec) Space() (int64, error) {
	eng, err := Lookup(s.Kind)
	if err != nil {
		return 0, err
	}
	return eng.Space(s)
}
