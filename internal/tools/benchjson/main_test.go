package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseBenchStream: a realistic -bench -benchmem stream parses into
// named entries with every metric, skipping headers and trailers.
func TestParseBenchStream(t *testing.T) {
	stream := `goos: linux
goarch: amd64
pkg: repro
BenchmarkFig01_SkiSlope16k1k1k-8   	     120	   9876543 ns/op	  204800 B/op	    1024 allocs/op
BenchmarkFig21_Segmentation-8      	      10	 112233445 ns/op	 9.875 curves/op
PASS
ok  	repro	12.345s
`
	report, err := parse(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(report.Benchmarks))
	}
	b := report.Benchmarks[0]
	if b.Name != "Fig01_SkiSlope16k1k1k" || b.Procs != 8 || b.Iterations != 120 {
		t.Fatalf("first entry parsed as %+v", b)
	}
	if b.Metrics["ns/op"] != 9876543 || b.Metrics["B/op"] != 204800 || b.Metrics["allocs/op"] != 1024 {
		t.Fatalf("first entry metrics %v", b.Metrics)
	}
	seg := report.Benchmarks[1]
	if seg.Name != "Fig21_Segmentation" {
		t.Fatalf("second entry name %q", seg.Name)
	}
	if seg.Metrics["curves/op"] != 9.875 {
		t.Fatalf("custom ReportMetric unit lost: %v", seg.Metrics)
	}
}

// TestParseLineRejectsTornResults: a line that starts like a result but
// carries unpaired metrics is an error, not a silent skip.
func TestParseLineRejectsTornResults(t *testing.T) {
	if _, _, err := parseLine("BenchmarkX-8 100 123 ns/op 456"); err == nil {
		t.Fatal("torn result line parsed without error")
	}
	if _, ok, err := parseLine("BenchmarkX ran fine"); ok || err != nil {
		t.Fatalf("non-result line: ok=%v err=%v, want skipped", ok, err)
	}
}

// TestParseLineNoProcsSuffix: GOMAXPROCS=1 result lines have no -N
// suffix; the name must survive intact.
func TestParseLineNoProcsSuffix(t *testing.T) {
	b, ok, err := parseLine("BenchmarkSolo 5 200 ns/op")
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if b.Name != "Solo" || b.Procs != 0 || b.Iterations != 5 {
		t.Fatalf("parsed %+v", b)
	}
}

// TestRunDelta: the artifact-comparison mode reports per-benchmark
// ns/op movement, marks increases past the threshold as regressions,
// and lists benchmarks present on only one side.
func TestRunDelta(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	write := func(path string, r *Report) {
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(oldPath, &Report{Benchmarks: []Benchmark{
		{Name: "Stable", Iterations: 10, Metrics: map[string]float64{"ns/op": 1000}},
		{Name: "Slower", Iterations: 10, Metrics: map[string]float64{"ns/op": 1000}},
		{Name: "Removed", Iterations: 10, Metrics: map[string]float64{"ns/op": 500}},
	}})
	write(newPath, &Report{Benchmarks: []Benchmark{
		{Name: "Stable", Iterations: 10, Metrics: map[string]float64{"ns/op": 1020}},
		{Name: "Slower", Iterations: 10, Metrics: map[string]float64{"ns/op": 1500}},
		{Name: "Added", Iterations: 10, Metrics: map[string]float64{"ns/op": 42}},
	}})

	var buf bytes.Buffer
	if err := runDelta(&buf, oldPath, newPath, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Slower", "REGRESSION", "1 regression(s)",
		"(new)", "(removed)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("delta report missing %q:\n%s", want, out)
		}
	}
	// A +2% move under the 10% threshold is not a regression.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "Stable") && strings.Contains(line, "REGRESSION") {
			t.Fatalf("sub-threshold benchmark flagged: %s", line)
		}
	}
}
