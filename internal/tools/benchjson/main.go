// Command benchjson converts `go test -bench` text output into a stable
// JSON artifact, so benchmark results can be archived, diffed, and
// consumed by tooling without re-parsing the free-form text. It reads
// the benchmark log from stdin and writes one JSON document:
//
//	go test -run '^$' -bench . -benchmem . | go run ./internal/tools/benchjson -out BENCH.json
//
// Every `Benchmark*` result line becomes one entry carrying the
// benchmark name (with the -GOMAXPROCS suffix split off), the iteration
// count, and every reported metric — the standard ns/op, B/op and
// allocs/op as well as any custom b.ReportMetric units. Non-benchmark
// lines (PASS, ok, goos/goarch headers) are ignored, so the tool can be
// fed the raw `go test` stream.
//
// With -delta, benchjson instead compares two previously written
// artifacts and prints a per-benchmark ns/op report, flagging increases
// past -threshold percent as regressions:
//
//	go run ./internal/tools/benchjson -delta BENCH_PR6.json BENCH_PR7.json
//
// The delta report is informational (exit 0 either way): CI artifacts
// are single-iteration smoke runs whose noise would make a hard gate
// flap, so the report's job is to make regressions visible in the log,
// not to block the build.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name without the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the benchmark ran at (0 when the line
	// carried no suffix).
	Procs int `json:"procs,omitempty"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every "<value> <unit>" pair on the
	// line (ns/op, B/op, allocs/op, custom ReportMetric units).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the emitted JSON document.
type Report struct {
	// Benchmarks are the parsed results in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "", "output file (empty = stdout)")
	delta := flag.Bool("delta", false, "compare two artifacts (OLD.json NEW.json) instead of parsing a bench stream")
	threshold := flag.Float64("threshold", 10, "percent ns/op increase flagged as a regression in -delta mode")
	flag.Parse()

	if *delta {
		if flag.NArg() != 2 {
			log.Fatal("usage: benchjson -delta OLD.json NEW.json")
		}
		if err := runDelta(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold); err != nil {
			log.Fatal(err)
		}
		return
	}

	report, err := parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(report.Benchmarks), *out)
}

// runDelta loads two artifacts and prints the ns/op movement of every
// benchmark they share, plus the benchmarks only one side has. An
// increase past threshold percent is marked REGRESSION; the function
// still returns nil, because smoke-run artifacts are too noisy to gate
// the build on — the mark is for the CI log reader.
func runDelta(w io.Writer, oldPath, newPath string, threshold float64) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]Benchmark, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}
	fmt.Fprintf(w, "benchmark delta: %s -> %s (regression threshold %+.0f%% ns/op)\n",
		oldPath, newPath, threshold)
	regressions := 0
	seen := make(map[string]bool, len(newRep.Benchmarks))
	for _, nb := range newRep.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(w, "  %-40s %12s -> %12.1f ns/op  (new)\n", nb.Name, "-", nb.Metrics["ns/op"])
			continue
		}
		oldNs, newNs := ob.Metrics["ns/op"], nb.Metrics["ns/op"]
		if oldNs <= 0 || newNs <= 0 {
			fmt.Fprintf(w, "  %-40s no ns/op metric on one side\n", nb.Name)
			continue
		}
		pct := 100 * (newNs - oldNs) / oldNs
		mark := ""
		if pct > threshold {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "  %-40s %12.1f -> %12.1f ns/op  %+7.1f%%%s\n", nb.Name, oldNs, newNs, pct, mark)
	}
	for _, ob := range oldRep.Benchmarks {
		if !seen[ob.Name] {
			fmt.Fprintf(w, "  %-40s %12.1f -> %12s ns/op  (removed)\n", ob.Name, ob.Metrics["ns/op"], "-")
		}
	}
	if regressions > 0 {
		fmt.Fprintf(w, "benchjson: %d regression(s) past %+.0f%% — inspect before merging\n", regressions, threshold)
	} else {
		fmt.Fprintf(w, "benchjson: no regressions past %+.0f%%\n", threshold)
	}
	return nil
}

// loadReport reads an artifact previously written by benchjson.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &r, nil
}

// parse scans a `go test -bench` stream and collects every result line.
func parse(r io.Reader) (*Report, error) {
	report := &Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		b, ok, err := parseLine(sc.Text())
		if err != nil {
			return nil, err
		}
		if ok {
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return report, nil
}

// parseLine parses one benchmark result line; ok is false for anything
// that is not one (headers, PASS/ok trailers, blank lines). A line that
// starts like a result but does not parse is an error — silently
// dropping it would under-report the suite.
func parseLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false, nil
	}
	// Result lines have an iteration count in field 1; lines like
	// "BenchmarkFoo--- FAIL" or the bare name printed with -v do not.
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil
	}
	b := Benchmark{Iterations: iters, Metrics: map[string]float64{}}
	b.Name = fields[0]
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	b.Name = strings.TrimPrefix(b.Name, "Benchmark")
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, false, fmt.Errorf("odd metric pairing in result line %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("metric value %q in result line %q: %v", rest[i], line, err)
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, true, nil
}
