// Command benchjson converts `go test -bench` text output into a stable
// JSON artifact, so benchmark results can be archived, diffed, and
// consumed by tooling without re-parsing the free-form text. It reads
// the benchmark log from stdin and writes one JSON document:
//
//	go test -run '^$' -bench . -benchmem . | go run ./internal/tools/benchjson -out BENCH.json
//
// Every `Benchmark*` result line becomes one entry carrying the
// benchmark name (with the -GOMAXPROCS suffix split off), the iteration
// count, and every reported metric — the standard ns/op, B/op and
// allocs/op as well as any custom b.ReportMetric units. Non-benchmark
// lines (PASS, ok, goos/goarch headers) are ignored, so the tool can be
// fed the raw `go test` stream.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name without the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the benchmark ran at (0 when the line
	// carried no suffix).
	Procs int `json:"procs,omitempty"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every "<value> <unit>" pair on the
	// line (ns/op, B/op, allocs/op, custom ReportMetric units).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the emitted JSON document.
type Report struct {
	// Benchmarks are the parsed results in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "", "output file (empty = stdout)")
	flag.Parse()

	report, err := parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(report.Benchmarks), *out)
}

// parse scans a `go test -bench` stream and collects every result line.
func parse(r io.Reader) (*Report, error) {
	report := &Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		b, ok, err := parseLine(sc.Text())
		if err != nil {
			return nil, err
		}
		if ok {
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return report, nil
}

// parseLine parses one benchmark result line; ok is false for anything
// that is not one (headers, PASS/ok trailers, blank lines). A line that
// starts like a result but does not parse is an error — silently
// dropping it would under-report the suite.
func parseLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false, nil
	}
	// Result lines have an iteration count in field 1; lines like
	// "BenchmarkFoo--- FAIL" or the bare name printed with -v do not.
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil
	}
	b := Benchmark{Iterations: iters, Metrics: map[string]float64{}}
	b.Name = fields[0]
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	b.Name = strings.TrimPrefix(b.Name, "Benchmark")
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, false, fmt.Errorf("odd metric pairing in result line %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("metric value %q in result line %q: %v", rest[i], line, err)
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, true, nil
}
