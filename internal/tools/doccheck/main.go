// Command doccheck is the CI documentation gate. It enforces two rules
// with go/ast, failing (exit 1) with a file:line listing when either is
// violated:
//
//  1. Every package under internal/ and cmd/ (and the root orojenesis
//     facade) has a package doc comment, so each package states which
//     paper section or figure it reproduces.
//  2. Every exported top-level identifier in the core packages — pareto,
//     traverse, bound, shard, supervise, serve, workload, fleet — has a
//     doc comment. A group comment on a const/var block covers the whole
//     block.
//  3. Every "docs/<name>.md" reference in a comment points at a file
//     that exists, so doc comments cannot drift away from the documents
//     they cite (e.g. docs/fleet-protocol.md, docs/shard-format.md).
//
// Usage (from the module root, as `make docs` does):
//
//	go run ./internal/tools/doccheck
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// strictDirs are the packages whose exported identifiers must all carry
// doc comments, not just the package clause.
var strictDirs = map[string]bool{
	"internal/pareto":    true,
	"internal/traverse":  true,
	"internal/bound":     true,
	"internal/shard":     true,
	"internal/supervise": true,
	"internal/serve":     true,
	"internal/workload":  true,
	"internal/fleet":     true,
	"internal/store":     true,
}

// docRefPattern matches module-relative documentation references in
// comments, e.g. "docs/fleet-protocol.md".
var docRefPattern = regexp.MustCompile(`\bdocs/[A-Za-z0-9._-]+\.md\b`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	dirs, err := packageDirs(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}

	var problems []string
	for _, dir := range dirs {
		ps, err := checkDir(root, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		problems = append(problems, ps...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d packages documented (%d with full exported-identifier coverage)\n",
		len(dirs), countStrict(dirs))
}

// packageDirs returns the module-relative directories doccheck audits:
// the root package plus every directory under internal/ and cmd/ that
// contains Go files, testdata and vendored trees excluded.
func packageDirs(root string) ([]string, error) {
	dirs := []string{"."}
	for _, top := range []string{"internal", "cmd"} {
		err := filepath.WalkDir(filepath.Join(root, top), func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				dirs = append(dirs, filepath.ToSlash(rel))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

func countStrict(dirs []string) int {
	n := 0
	for _, d := range dirs {
		if strictDirs[d] {
			n++
		}
	}
	return n
}

// checkDir parses one package directory (test files excluded) and
// returns its documentation problems.
func checkDir(root, dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, filepath.Join(root, dir), func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}

	var problems []string
	for name, pkg := range pkgs {
		if !hasPackageDoc(pkg) {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package doc comment", dir, name))
		}
		for _, file := range pkg.Files {
			problems = append(problems, checkDocRefs(root, fset, file)...)
			if strictDirs[dir] {
				problems = append(problems, checkExported(fset, file)...)
			}
		}
	}
	sort.Strings(problems)
	return problems, nil
}

func hasPackageDoc(pkg *ast.Package) bool {
	for _, file := range pkg.Files {
		if file.Doc != nil && strings.TrimSpace(file.Doc.Text()) != "" {
			return true
		}
	}
	return false
}

// checkDocRefs reports every "docs/<name>.md" reference in file's
// comments that does not resolve to a file under the module root — the
// cross-check keeping doc comments and the docs/ tree in sync.
func checkDocRefs(root string, fset *token.FileSet, file *ast.File) []string {
	var problems []string
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			for _, ref := range docRefPattern.FindAllString(c.Text, -1) {
				if _, err := os.Stat(filepath.Join(root, filepath.FromSlash(ref))); err != nil {
					p := fset.Position(c.Pos())
					problems = append(problems, fmt.Sprintf("%s:%d: comment references %s, which does not exist",
						filepath.ToSlash(p.Filename), p.Line, ref))
				}
			}
		}
	}
	return problems
}

// checkExported reports every exported top-level declaration in file
// that lacks a doc comment: funcs and methods (when the receiver type is
// exported), and specs inside type/const/var blocks. A doc comment on
// the enclosing GenDecl covers all of its specs, matching godoc's
// rendering of grouped constants.
func checkExported(fset *token.FileSet, file *ast.File) []string {
	var problems []string
	undocumented := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			filepath.ToSlash(p.Filename), p.Line, what, name))
	}

	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				what := "function"
				if d.Recv != nil {
					what = "method"
				}
				undocumented(d.Pos(), what, d.Name.Name)
			}
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
				continue
			}
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !groupDoc && s.Doc == nil {
						undocumented(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if groupDoc || s.Doc != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							undocumented(s.Pos(), d.Tok.String(), n.Name)
							break
						}
					}
				}
			}
		}
	}
	return problems
}

// exportedReceiver reports whether d is a plain function or a method on
// an exported type; methods on unexported types are godoc-invisible and
// exempt.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return !ok || id.IsExported()
}
