package oi

import (
	"math"
	"testing"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/pareto"
)

func testCurve() *pareto.Curve {
	return pareto.FromPoints([]pareto.Point{
		{BufferBytes: 100, AccessBytes: 10000},
		{BufferBytes: 1000, AccessBytes: 2000},
		{BufferBytes: 10000, AccessBytes: 1000},
	})
}

func TestMesaMonotone(t *testing.T) {
	c := testCurve()
	mesa := Mesa(c, 1_000_000, 2)
	if len(mesa) != 3 {
		t.Fatalf("mesa has %d points", len(mesa))
	}
	for i := 1; i < len(mesa); i++ {
		if mesa[i].OI <= mesa[i-1].OI {
			t.Fatalf("mesa not increasing: %v", mesa)
		}
	}
	// OI at the first point: 1e6 MACs / (10000/2 elements) = 200.
	if math.Abs(mesa[0].OI-200) > 1e-9 {
		t.Fatalf("mesa[0].OI = %f, want 200", mesa[0].OI)
	}
}

func TestPeakOIAndOIAt(t *testing.T) {
	c := testCurve()
	if got := PeakOI(c, 1_000_000, 2); math.Abs(got-2000) > 1e-9 {
		t.Fatalf("PeakOI = %f, want 2000", got)
	}
	if got, ok := OIAt(c, 1_000_000, 2, 1500); !ok || math.Abs(got-1000) > 1e-9 {
		t.Fatalf("OIAt(1500) = (%f,%v), want (1000,true)", got, ok)
	}
	if _, ok := OIAt(c, 1, 2, 50); ok {
		t.Fatal("OIAt below min buffer should be infeasible")
	}
	if PeakOI(&pareto.Curve{}, 1, 2) != 0 {
		t.Fatal("PeakOI of empty curve should be 0")
	}
}

func TestGEMMPeakOIFromDerivedCurve(t *testing.T) {
	g := einsum.GEMM("g", 64, 64, 64)
	c := bound.Derive(g, bound.Options{}).Curve
	peak := PeakOI(c, g.MACs(), g.ElementSize)
	want := bound.GEMMPeakOI(64, 64, 64)
	if math.Abs(peak-want) > 1e-9 {
		t.Fatalf("peak OI %f != closed form %f", peak, want)
	}
}

func TestRoofline(t *testing.T) {
	// OI 100 MACs/elem, 2B elems -> 50 MACs/B; with 10 B/s bandwidth ->
	// 500 MACs/s, below a 1000 MACs/s compute peak.
	if got := Roofline(1000, 10, 100, 2); got != 500 {
		t.Fatalf("memory-bound roofline = %f, want 500", got)
	}
	if got := Roofline(400, 10, 100, 2); got != 400 {
		t.Fatalf("compute-bound roofline = %f, want 400", got)
	}
}

func TestChipSpec(t *testing.T) {
	s := GF100()
	usable := s.UsableAreaUM2()
	if math.Abs(usable-529e6*0.8) > 1 {
		t.Fatalf("usable area = %f", usable)
	}
	// All area to SRAM.
	if b := s.BufferBytesAt(1.0); b != int64(usable/2.59) {
		t.Fatalf("BufferBytesAt(1) = %d", b)
	}
	if m := s.MACsAt(0); m != int64(usable/332.25) {
		t.Fatalf("MACsAt(0) = %d", m)
	}
	if s.MACsAt(1.0) != 0 || s.BufferBytesAt(0) != 0 {
		t.Fatal("extremes should be zero")
	}
}

func TestPerformanceMesaConcaveShape(t *testing.T) {
	g := einsum.GEMM("g", 256, 256, 256)
	c := bound.Derive(g, bound.Options{}).Curve
	mesa := PerformanceMesa(c, g.MACs(), GF100(), Ratios(0.001, 0.999, 200))

	best, ok := OptimalRatio(mesa)
	if !ok {
		t.Fatal("no feasible mesa point")
	}
	// The optimum should be interior: better than both extremes.
	first, last := mesa[0], mesa[len(mesa)-1]
	if first.Feasible && best.Achieved < first.Achieved {
		t.Fatal("optimum worse than smallest-buffer point")
	}
	if last.Feasible && best.Achieved < last.Achieved {
		t.Fatal("optimum worse than largest-buffer point")
	}
	// Compute-limited curve decreases with ratio; memory-limited is
	// non-decreasing (larger buffer never hurts the bound).
	for i := 1; i < len(mesa); i++ {
		if mesa[i].ComputeMACs > mesa[i-1].ComputeMACs+1 {
			t.Fatal("compute-limited throughput should fall with buffer ratio")
		}
		if mesa[i].Feasible && mesa[i-1].Feasible && mesa[i].MemoryMACs < mesa[i-1].MemoryMACs-1 {
			t.Fatal("memory-limited throughput should rise with buffer ratio")
		}
	}
}

func TestRatios(t *testing.T) {
	r := Ratios(0, 1, 4)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(r) != len(want) {
		t.Fatalf("Ratios = %v", r)
	}
	for i := range want {
		if math.Abs(r[i]-want[i]) > 1e-12 {
			t.Fatalf("Ratios = %v", r)
		}
	}
	if r := Ratios(0.5, 1, 0); len(r) != 1 || r[0] != 0.5 {
		t.Fatalf("Ratios(n=0) = %v", r)
	}
}

func TestOptimalRatioNoFeasible(t *testing.T) {
	if _, ok := OptimalRatio([]PerfPoint{{Feasible: false}}); ok {
		t.Fatal("OptimalRatio should report no feasible point")
	}
}
