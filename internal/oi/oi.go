// Package oi builds the paper's derivative models on top of ski-slope
// curves: the attainable operational-intensity mesa (Fig. 8), a classic
// roofline, and the buffer-vs-MAC area provisioning model that yields the
// concave "performance mesa" of Figs. 9 and 23 (Sec. VII-D).
package oi

import (
	"math"

	"repro/internal/pareto"
)

// MesaPoint is one point of an OI mesa: the best attainable operational
// intensity (MACs per element of backing-store traffic) at a buffer size.
type MesaPoint struct {
	BufferBytes int64
	OI          float64
}

// Mesa derives the attainable-OI curve from a ski-slope curve. macs is the
// workload's total multiply-accumulate count and elementSize the operand
// width in bytes. The result is monotonically non-decreasing in buffer
// size and flat-tops at the peak OI (the mesa).
func Mesa(c *pareto.Curve, macs int64, elementSize int64) []MesaPoint {
	pts := c.Points()
	out := make([]MesaPoint, len(pts))
	for i, p := range pts {
		elems := float64(p.AccessBytes) / float64(elementSize)
		out[i] = MesaPoint{BufferBytes: p.BufferBytes, OI: float64(macs) / elems}
	}
	return out
}

// PeakOI returns the mesa's flat top: the OI attainable with the maximal
// effectual buffer.
func PeakOI(c *pareto.Curve, macs int64, elementSize int64) float64 {
	if c.Empty() {
		return 0
	}
	elems := float64(c.MinAccessBytes()) / float64(elementSize)
	return float64(macs) / elems
}

// OIAt returns the attainable OI at a given capacity; ok is false when no
// mapping fits.
func OIAt(c *pareto.Curve, macs, elementSize, bufferBytes int64) (float64, bool) {
	acc, ok := c.AccessesAt(bufferBytes)
	if !ok {
		return 0, false
	}
	return float64(macs) / (float64(acc) / float64(elementSize)), true
}

// Roofline computes attainable throughput in MACs/s for a machine with the
// given peak compute (MACs/s) and memory bandwidth (bytes/s), at an
// operational intensity of oi MACs/element with elementSize-byte elements.
func Roofline(peakMACsPerSec, bandwidthBytesPerSec float64, oi float64, elementSize int64) float64 {
	macsPerByte := oi / float64(elementSize)
	return math.Min(peakMACsPerSec, macsPerByte*bandwidthBytesPerSec)
}

// ChipSpec describes the fixed chip envelope of the Sec. VII-D provisioning
// study. Areas are in µm², die area in mm².
type ChipSpec struct {
	DieAreaMM2     float64
	IOFraction     float64 // fraction of die reserved for IO
	AreaPerMACUM2  float64
	AreaPerByteUM2 float64
	FrequencyHz    float64
	DRAMBandwidth  float64 // bytes/s
}

// GF100 returns the paper's baseline chip: a GF100-like 40 nm die of
// 529 mm² at 700 MHz with 149 GB/s DRAM bandwidth; 332.25 µm² per MAC and
// 2.59 µm² per byte of SRAM (Accelergy-derived constants); 20% of the die
// is IO.
func GF100() ChipSpec {
	return ChipSpec{
		DieAreaMM2:     529,
		IOFraction:     0.20,
		AreaPerMACUM2:  332.25,
		AreaPerByteUM2: 2.59,
		FrequencyHz:    700e6,
		DRAMBandwidth:  149e9,
	}
}

// UsableAreaUM2 is the die area available for SRAM and MACs.
func (s ChipSpec) UsableAreaUM2() float64 {
	return s.DieAreaMM2 * 1e6 * (1 - s.IOFraction)
}

// BufferBytesAt returns the buffer capacity bought by devoting ratio of
// the usable area to SRAM.
func (s ChipSpec) BufferBytesAt(ratio float64) int64 {
	return int64(ratio * s.UsableAreaUM2() / s.AreaPerByteUM2)
}

// MACsAt returns the MAC count bought by the remaining area.
func (s ChipSpec) MACsAt(ratio float64) int64 {
	return int64((1 - ratio) * s.UsableAreaUM2() / s.AreaPerMACUM2)
}

// PerfPoint is one sample of the performance mesa.
type PerfPoint struct {
	BufferAreaRatio float64
	BufferBytes     int64
	MACUnits        int64
	ComputeMACs     float64 // compute-limited throughput, MACs/s
	MemoryMACs      float64 // memory-limited throughput, MACs/s
	Achieved        float64 // min of the two
	Feasible        bool    // false when no mapping fits in the buffer
}

// PerformanceMesa sweeps the buffer-to-total-area ratio and evaluates
// compute-limited and memory-limited throughput for a workload whose
// ski-slope curve is c and whose total work is macs MACs.
//
//	memory-limited MACs/s = macs / (Orojenesis(bufferBytes) / bandwidth)
//	compute-limited MACs/s = MAC units x frequency
func PerformanceMesa(c *pareto.Curve, macs int64, spec ChipSpec, ratios []float64) []PerfPoint {
	out := make([]PerfPoint, 0, len(ratios))
	for _, r := range ratios {
		p := PerfPoint{
			BufferAreaRatio: r,
			BufferBytes:     spec.BufferBytesAt(r),
			MACUnits:        spec.MACsAt(r),
		}
		p.ComputeMACs = float64(p.MACUnits) * spec.FrequencyHz
		if acc, ok := c.AccessesAt(p.BufferBytes); ok && acc > 0 {
			p.MemoryMACs = float64(macs) * spec.DRAMBandwidth / float64(acc)
			p.Achieved = math.Min(p.ComputeMACs, p.MemoryMACs)
			p.Feasible = true
		}
		out = append(out, p)
	}
	return out
}

// OptimalRatio returns the mesa sample with the highest achieved
// throughput. ok is false when no sample was feasible.
func OptimalRatio(mesa []PerfPoint) (PerfPoint, bool) {
	best := PerfPoint{}
	found := false
	for _, p := range mesa {
		if p.Feasible && (!found || p.Achieved > best.Achieved) {
			best = p
			found = true
		}
	}
	return best, found
}

// Ratios returns n+1 evenly spaced area ratios spanning [lo, hi].
func Ratios(lo, hi float64, n int) []float64 {
	if n < 1 {
		return []float64{lo}
	}
	out := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		out[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	return out
}
