// Package trace generates memory-address traces for concrete tiled-GEMM
// implementations. Together with the cache simulator it substitutes for
// the paper's hardware measurements (Fig. 2, Fig. 24a): each trace is one
// *specific* mapping whose simulated DRAM traffic must land on or above
// the mapping-independent Orojenesis bound.
package trace

import (
	"fmt"

	"repro/internal/shape"
)

// Visitor receives one memory access: a byte address and whether it is a
// write.
type Visitor func(addr uint64, write bool)

// TiledGEMM describes a concrete tiled GEMM implementation: C[M,N] +=
// A[M,K] * W[K,N] tiled with inner tile sizes (M0, K0, N0) and an outer
// loop order. The three operands live back to back in a flat address
// space; accesses are emitted in execution order at element granularity,
// with the accumulator register-held across the inner K loop (one output
// read+write per inner (m,n) pair per K tile, the standard register-blocked
// inner loop).
type TiledGEMM struct {
	M, K, N    int64
	M0, K0, N0 int64
	// Order is the outer loop nest from outermost to innermost, a
	// permutation of "M", "K", "N".
	Order       [3]string
	ElementSize int64
}

// Validate checks tile divisibility and the loop order.
func (t *TiledGEMM) Validate() error {
	if t.M < 1 || t.K < 1 || t.N < 1 {
		return fmt.Errorf("trace: non-positive GEMM shape %dx%dx%d", t.M, t.K, t.N)
	}
	if t.M0 < 1 || t.K0 < 1 || t.N0 < 1 ||
		t.M%t.M0 != 0 || t.K%t.K0 != 0 || t.N%t.N0 != 0 {
		return fmt.Errorf("trace: tiles (%d,%d,%d) do not divide shape (%d,%d,%d)",
			t.M0, t.K0, t.N0, t.M, t.K, t.N)
	}
	seen := map[string]bool{}
	for _, r := range t.Order {
		if r != "M" && r != "K" && r != "N" || seen[r] {
			return fmt.Errorf("trace: bad loop order %v", t.Order)
		}
		seen[r] = true
	}
	if t.ElementSize < 1 {
		return fmt.Errorf("trace: element size %d", t.ElementSize)
	}
	return nil
}

// Bases returns the starting byte addresses of A, W and B.
func (t *TiledGEMM) Bases() (a, w, b uint64) {
	a = 0
	w = uint64(t.M * t.K * t.ElementSize)
	b = w + uint64(t.K*t.N*t.ElementSize)
	return
}

// TotalAccesses returns the number of accesses Emit will produce.
func (t *TiledGEMM) TotalAccesses() int64 {
	macs := shape.Product(t.M, t.K, t.N)
	// 2 operand reads per MAC + output read+write once per (m,n) pair per
	// K tile.
	outTouches := 2 * shape.Product(t.M, t.N, t.K/t.K0)
	return 2*macs + outTouches
}

// Emit walks the tiled loop nest and reports every access to visit.
func (t *TiledGEMM) Emit(visit Visitor) error {
	if err := t.Validate(); err != nil {
		return err
	}
	baseA, baseW, baseB := t.Bases()
	es := uint64(t.ElementSize)

	bounds := map[string]int64{"M": t.M / t.M0, "K": t.K / t.K0, "N": t.N / t.N0}
	tiles := map[string]int64{"M": t.M0, "K": t.K0, "N": t.N0}

	idx := map[string]int64{}
	var outer func(level int)
	inner := func() {
		mBase := idx["M"] * tiles["M"]
		kBase := idx["K"] * tiles["K"]
		nBase := idx["N"] * tiles["N"]
		for m := mBase; m < mBase+t.M0; m++ {
			for n := nBase; n < nBase+t.N0; n++ {
				// Load the accumulator once per K tile.
				addrB := baseB + uint64(m*t.N+n)*es
				visit(addrB, false)
				for k := kBase; k < kBase+t.K0; k++ {
					visit(baseA+uint64(m*t.K+k)*es, false)
					visit(baseW+uint64(k*t.N+n)*es, false)
				}
				visit(addrB, true)
			}
		}
	}
	outer = func(level int) {
		if level == len(t.Order) {
			inner()
			return
		}
		r := t.Order[level]
		for i := int64(0); i < bounds[r]; i++ {
			idx[r] = i
			outer(level + 1)
		}
	}
	outer(0)
	return nil
}

// Collect materializes the full trace; intended for small shapes (tests,
// Belady analysis), since traces grow with 2*M*K*N.
func (t *TiledGEMM) Collect() ([]uint64, []bool, error) {
	n := t.TotalAccesses()
	addrs := make([]uint64, 0, n)
	writes := make([]bool, 0, n)
	err := t.Emit(func(addr uint64, write bool) {
		addrs = append(addrs, addr)
		writes = append(writes, write)
	})
	return addrs, writes, err
}
