package trace

import (
	"testing"
)

func tinyGEMM() *TiledGEMM {
	return &TiledGEMM{
		M: 4, K: 4, N: 4,
		M0: 2, K0: 2, N0: 2,
		Order:       [3]string{"M", "K", "N"},
		ElementSize: 2,
	}
}

func TestValidate(t *testing.T) {
	if err := tinyGEMM().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := tinyGEMM()
	bad.M0 = 3
	if err := bad.Validate(); err == nil {
		t.Fatal("non-dividing tile accepted")
	}
	bad = tinyGEMM()
	bad.Order = [3]string{"M", "M", "N"}
	if err := bad.Validate(); err == nil {
		t.Fatal("repeated loop accepted")
	}
	bad = tinyGEMM()
	bad.ElementSize = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero element size accepted")
	}
}

func TestTotalAccessesMatchesEmit(t *testing.T) {
	g := tinyGEMM()
	var count int64
	if err := g.Emit(func(uint64, bool) { count++ }); err != nil {
		t.Fatal(err)
	}
	if count != g.TotalAccesses() {
		t.Fatalf("emitted %d accesses, TotalAccesses says %d", count, g.TotalAccesses())
	}
	// 2*MACs + 2*M*N*(K/K0) = 2*64 + 2*4*4*2 = 192.
	if count != 192 {
		t.Fatalf("count = %d, want 192", count)
	}
}

func TestAddressRangesAndWrites(t *testing.T) {
	g := tinyGEMM()
	baseA, baseW, baseB := g.Bases()
	if baseA != 0 || baseW != 4*4*2 || baseB != 2*4*4*2 {
		t.Fatalf("bases = %d,%d,%d", baseA, baseW, baseB)
	}
	end := baseB + uint64(4*4*2)
	var writes int64
	seenB := map[uint64]bool{}
	err := g.Emit(func(addr uint64, write bool) {
		if addr >= end {
			t.Fatalf("address %d out of range", addr)
		}
		if write {
			writes++
			if addr < baseB {
				t.Fatalf("write to non-output address %d", addr)
			}
			seenB[addr] = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// One write per (m,n) pair per K tile: 4*4*2 = 32.
	if writes != 32 {
		t.Fatalf("writes = %d, want 32", writes)
	}
	// Every output element is written.
	if len(seenB) != 16 {
		t.Fatalf("distinct output addresses = %d, want 16", len(seenB))
	}
}

func TestReadCountsPerOperand(t *testing.T) {
	g := tinyGEMM()
	_, baseW, baseB := g.Bases()
	var readsA, readsW, readsB int64
	err := g.Emit(func(addr uint64, write bool) {
		if write {
			return
		}
		switch {
		case addr < baseW:
			readsA++
		case addr < baseB:
			readsW++
		default:
			readsB++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	macs := int64(4 * 4 * 4)
	if readsA != macs || readsW != macs {
		t.Fatalf("A/W reads = %d/%d, want %d each", readsA, readsW, macs)
	}
	if readsB != 32 {
		t.Fatalf("B reads = %d, want 32", readsB)
	}
}

func TestCollect(t *testing.T) {
	g := tinyGEMM()
	addrs, writes, err := g.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(addrs)) != g.TotalAccesses() || len(addrs) != len(writes) {
		t.Fatalf("Collect lengths %d/%d", len(addrs), len(writes))
	}
}

func TestEmitRejectsInvalid(t *testing.T) {
	bad := tinyGEMM()
	bad.N0 = 3
	if err := bad.Emit(func(uint64, bool) {}); err == nil {
		t.Fatal("Emit accepted invalid config")
	}
}
