package nest

import "testing"

func relOf(ranks ...string) func(string) bool {
	set := map[string]bool{}
	for _, r := range ranks {
		set[r] = true
	}
	return func(r string) bool { return set[r] }
}

func TestIterationsProductRule(t *testing.T) {
	// Fig. 6 shape: loops M, K, N outermost first. A tensor relevant to
	// (M, K) stops at K; one relevant to (K, N) or (M, N) stops at N.
	loops := []Loop{{"M", 2}, {"K", 3}, {"N", 5}}
	cases := []struct {
		rel  func(string) bool
		want int64
	}{
		{relOf("M", "K"), 2 * 3},
		{relOf("K", "N"), 2 * 3 * 5},
		{relOf("M", "N"), 2 * 3 * 5},
		{relOf("M"), 2},
		{relOf(), 1},
	}
	for i, c := range cases {
		if got := Iterations(loops, c.rel); got != c.want {
			t.Errorf("case %d: got %d, want %d", i, got, c.want)
		}
	}
}

func TestBoundOneLoopsTransparent(t *testing.T) {
	// Bound-1 loops neither terminate the scan nor contribute a factor.
	loops := []Loop{{"M", 4}, {"K", 1}, {"N", 1}}
	if got := Iterations(loops, relOf("K", "N")); got != 1 {
		t.Fatalf("trailing bound-1 relevant loops: got %d, want 1", got)
	}
	loops = []Loop{{"M", 4}, {"K", 1}, {"N", 3}}
	if got := Iterations(loops, relOf("K", "N")); got != 12 {
		t.Fatalf("interior bound-1 loop should not contribute: got %d, want 12", got)
	}
}

func TestEmptyNest(t *testing.T) {
	if got := Iterations(nil, relOf("M")); got != 1 {
		t.Fatalf("empty nest: got %d, want 1", got)
	}
}

func TestCompositeNestMatchesSingleLevel(t *testing.T) {
	// A composite outer+mid nest is just one longer nest: concatenating
	// level nests must equal evaluating the flattened loop list.
	outer := []Loop{{"M", 2}, {"N", 4}}
	mid := []Loop{{"K", 3}, {"M", 5}}
	composite := append(append([]Loop{}, outer...), mid...)
	if got := Iterations(composite, relOf("M")); got != 2*4*3*5 {
		t.Fatalf("composite nest: got %d, want %d", got, 2*4*3*5)
	}
	if got := Iterations(composite, relOf("N")); got != 2*4 {
		t.Fatalf("composite nest, outer-only tensor: got %d, want %d", got, 2*4)
	}
}

func TestIterationsGroupedOverridesInnermostOnly(t *testing.T) {
	loops := []Loop{{"H", 8}, {"M", 2}}
	// Tensor relevant to both; the override halves the innermost factor
	// (e.g. 2 heads per group sharing a weight tile) but must not touch H.
	got := IterationsGrouped(loops, relOf("H", "M"), func(l Loop) int64 {
		if l.Rank != "M" {
			t.Fatalf("override consulted for non-innermost loop %q", l.Rank)
		}
		return 1
	})
	if got != 8 {
		t.Fatalf("grouped innermost: got %d, want 8", got)
	}
	// When the grouped rank is NOT innermost-relevant it contributes its
	// full bound: put H innermost instead.
	loops = []Loop{{"M", 2}, {"H", 8}}
	got = IterationsGrouped(loops, relOf("H", "M"), func(l Loop) int64 {
		if l.Rank != "H" {
			t.Fatalf("override consulted for %q, want innermost H", l.Rank)
		}
		return 4
	})
	if got != 2*4 {
		t.Fatalf("grouped innermost H: got %d, want 8", got)
	}
}
