// Package nest is the shared access model of the Orojenesis flow: the
// level-generic loop-nest iteration rule of Fig. 6. Every analytical
// evaluator in this repo — the two-level Snowcat model, the three-level
// joint bound, and the Simba validation model — expresses its per-tensor
// transfer count as the same product rule over a composite nest of
// (rank, bound) loops, so the rule lives here exactly once and the
// evaluators differ only in how they assemble the nest and the tensor's
// footprint.
//
// The rule: a tensor is re-transferred once per iteration of every loop
// from the outermost down to the innermost loop that is *relevant* to it
// (i.e. that advances the tensor's tile). Loops below the innermost
// relevant loop reuse the resident tile and contribute nothing; loops with
// bound 1 are transparent at any position.
package nest

// Loop is one loop of a composite nest, outermost first: the named rank is
// iterated Bound times at this level. Multi-level evaluators concatenate
// per-level nests (outer level first) into one composite nest.
type Loop struct {
	Rank  string
	Bound int64
}

// Iterations applies the product rule to a nest: the product of the bounds
// of all loops from the outermost down to the innermost loop with Bound > 1
// whose rank is relevant to the tensor. Returns 1 when no relevant loop
// iterates (the tensor's tile stays resident for the whole execution).
func Iterations(loops []Loop, relevant func(rank string) bool) int64 {
	return IterationsGrouped(loops, relevant, nil)
}

// IterationsGrouped is Iterations with a hook for grouped-rank reuse
// (grouped BMM weight sharing): when innermost is non-nil it supplies the
// factor contributed by the innermost relevant loop in place of its bound —
// consecutive iterations within a group revisit the same tile, so the
// effective transfer count of that loop shrinks. All outer loops still
// contribute their full bounds.
//
// This is the single implementation of the paper's Fig. 6 product rule;
// every evaluator instantiates it rather than re-deriving it.
func IterationsGrouped(loops []Loop, relevant func(rank string) bool, innermost func(Loop) int64) int64 {
	inner := -1
	for i := len(loops) - 1; i >= 0; i-- {
		if loops[i].Bound > 1 && relevant(loops[i].Rank) {
			inner = i
			break
		}
	}
	iters := int64(1)
	for i := 0; i <= inner; i++ {
		l := loops[i]
		if l.Bound == 1 {
			continue
		}
		factor := l.Bound
		if i == inner && innermost != nil {
			factor = innermost(l)
		}
		iters *= factor
	}
	return iters
}
