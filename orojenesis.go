// Package orojenesis computes attainable data-movement and operational-
// intensity bounds for tensor algorithms, reproducing "Mind the Gap:
// Attainable Data Movement and Operational Intensity Bounds for Tensor
// Algorithms" (ISCA 2024).
//
// Given an un-mapped tensor algorithm — a single Einsum (GEMM,
// convolution, batched or grouped matrix multiplication) or a producer-
// consumer chain of them — the library exhaustively traverses the mapspace
// of the two-level Snowcat proxy architecture and returns a ski-slope
// curve: for every buffer capacity, the minimum backing-store traffic that
// no tiling, loop order, or fusion schedule can beat. On top of the curve
// it builds the paper's derivative models: the attainable-OI mesa, the
// roofline-based performance mesa, and the buffer-vs-compute area
// provisioning model.
//
// Quick start:
//
//	g := orojenesis.GEMM("gemm4k", 4096, 4096, 4096)
//	a, _ := orojenesis.Analyze(g, orojenesis.Options{})
//	acc, _ := a.Curve.AccessesAt(40 << 20) // bound with a 40 MB buffer
//	fmt.Println(acc, a.MaxEffectualBytes)
//
// Fusion:
//
//	chain := orojenesis.MustChain("ffn", 32768,
//	    orojenesis.GEMMOp("mm_0", 32768, 4096, 16384),
//	    orojenesis.GEMMOp("mm_1", 32768, 16384, 4096))
//	ca, _ := orojenesis.AnalyzeChain(chain, orojenesis.Options{})
//	fmt.Println(ca.Tiled.MinAccessBytes(), ca.AlgoMin)
package orojenesis

import (
	"io"

	"repro/internal/bound"
	"repro/internal/core"
	"repro/internal/einsum"
	"repro/internal/fusion"
	"repro/internal/hierarchy"
	"repro/internal/llm"
	"repro/internal/models"
	"repro/internal/multilevel"
	"repro/internal/oi"
	"repro/internal/pareto"
	"repro/internal/plotting"
	"repro/internal/search"
)

// Workload model -------------------------------------------------------

// Einsum is an un-mapped tensor computation (see internal/einsum).
type Einsum = einsum.Einsum

// ConvConfig parameterizes a 2D convolution workload.
type ConvConfig = einsum.ConvConfig

// DefaultElementSize is the operand width (bytes) used by the builders.
const DefaultElementSize = einsum.DefaultElementSize

// GEMM builds B[m,n] = A[m,k] * W[k,n].
func GEMM(name string, m, k, n int64) *Einsum { return einsum.GEMM(name, m, k, n) }

// BMM builds the batched matrix multiplication of multi-head attention.
func BMM(name string, h, m, k, n int64) *Einsum { return einsum.BMM(name, h, m, k, n) }

// GroupedBMM builds the grouped BMM of MQA/GQA; g groups must divide h.
func GroupedBMM(name string, h, g, m, k, n int64) *Einsum {
	return einsum.GroupedBMM(name, h, g, m, k, n)
}

// Conv2D builds a multi-channel 2D convolution.
func Conv2D(name string, cfg ConvConfig) *Einsum { return einsum.Conv2D(name, cfg) }

// ParseEinsum builds a workload from the paper's textual notation, e.g.
// "B[m,n] = A[m,k] * W[k,n] {M=4096,K=4096,N=4096}"; strided terms
// ("A[2p+r,...]") and grouped dims ("W[h/4,...]") are supported.
func ParseEinsum(s string) (*Einsum, error) { return einsum.Parse(s) }

// Bounds ----------------------------------------------------------------

// Options tunes the exhaustive mapspace traversal.
type Options = bound.Options

// Curve is a ski-slope Pareto frontier of (buffer bytes, access bytes).
type Curve = pareto.Curve

// Point is one Pareto-optimal point of a Curve.
type Point = pareto.Point

// Analysis is the full single-Einsum report.
type Analysis = core.EinsumAnalysis

// Analyze runs the Orojenesis flow for a single Einsum: exhaustive
// Snowcat mapspace traversal, ski-slope curve, OI mesa and gap queries.
func Analyze(e *Einsum, opts Options) (*Analysis, error) {
	return core.AnalyzeEinsum(e, opts)
}

// Bound derives just the ski-slope curve (the green line of Fig. 1).
func Bound(e *Einsum, opts Options) *Curve {
	return bound.Derive(e, opts).Curve
}

// AnalyzeCurve rebuilds the full single-Einsum report from an already
// derived curve — e.g. one replayed from the durable curve store —
// without re-traversing the mapspace. Stats is zero: nothing ran.
func AnalyzeCurve(e *Einsum, c *Curve) (*Analysis, error) {
	return core.AnalyzeEinsumCurve(e, c)
}

// LevelBound is a probe of a curve at one memory level's capacity.
type LevelBound = bound.LevelBound

// ProbeLevels reads a curve at multiple capacities (Fig. 7).
func ProbeLevels(c *Curve, levels map[string]int64) []LevelBound {
	return bound.ProbeLevels(c, levels)
}

// Fusion ------------------------------------------------------------------

// Chain is a producer-consumer cascade of GEMM-like layers.
type Chain = fusion.Chain

// Op is one layer of a Chain.
type Op = fusion.Op

// GEMMOp builds a chain layer for a plain GEMM.
func GEMMOp(name string, m, k, n int64) Op { return fusion.GEMMOp(name, m, k, n) }

// ConvOp builds a chain layer for a stride-1, same-padded convolution
// fused at output-row granularity (fused-layer CNN dataflow).
func ConvOp(name string, cfg ConvConfig) Op { return fusion.ConvOp(name, cfg) }

// ChainFromEinsums assembles a GEMM chain from parsed Einsums.
func ChainFromEinsums(name string, es ...*Einsum) (*Chain, error) {
	return fusion.FromEinsums(name, es...)
}

// AttentionQKOp and AttentionQKVOp build the attention BMM chain layers.
func AttentionQKOp(name string, instances, seq, heads, f int64) Op {
	return fusion.AttentionQKOp(name, instances, seq, heads, f)
}
func AttentionQKVOp(name string, instances, seq, heads, f int64) Op {
	return fusion.AttentionQKVOp(name, instances, seq, heads, f)
}

// NewChain assembles and validates a chain.
func NewChain(name string, m int64, ops ...Op) (*Chain, error) {
	return fusion.NewChain(name, m, ops...)
}

// MustChain is NewChain that panics on error.
func MustChain(name string, m int64, ops ...Op) *Chain {
	return fusion.MustChain(name, m, ops...)
}

// ChainAnalysis is the multi-Einsum report: unfused baseline, tiled and
// untiled fusion bounds, and the best segmentation.
type ChainAnalysis = core.ChainAnalysis

// AnalyzeChain runs the multi-Einsum Orojenesis flow.
func AnalyzeChain(c *Chain, opts Options) (*ChainAnalysis, error) {
	return core.AnalyzeChain(c, opts)
}

// TiledFusion derives the FFMT tiled-fusion bound (Sec. V).
func TiledFusion(c *Chain) (*Curve, error) { return fusion.TiledFusion(c) }

// UntiledFusion derives the fully-buffered-intermediate fusion bound.
func UntiledFusion(c *Chain) (*Curve, error) { return fusion.UntiledFusion(c) }

// PipelinedFusion derives the pipelined-execution fusion bound (Sec. V-B):
// equal access counts to all-resident sequential fusion at a strictly
// larger buffer requirement.
func PipelinedFusion(c *Chain) (*Curve, error) { return fusion.PipelinedFusion(c) }

// TiledFusionWithPartialSpill extends two-op tiled fusion with
// partial-sum spilling to the backing store (the paper's Sec. V-F
// future-work knob).
func TiledFusionWithPartialSpill(c *Chain) (*Curve, error) {
	return fusion.TiledFusionWithPartialSpill(c)
}

// MHAConfig drives the attention fusion-strategy comparison (Fig. 20).
type MHAConfig = fusion.MHAConfig

// Derivative models -------------------------------------------------------

// MesaPoint is one sample of an attainable-OI mesa.
type MesaPoint = oi.MesaPoint

// OIMesa derives the attainable-OI curve of a workload (Fig. 8).
func OIMesa(c *Curve, macs, elementSize int64) []MesaPoint {
	return oi.Mesa(c, macs, elementSize)
}

// ChipSpec describes a chip envelope for the area provisioning model.
type ChipSpec = oi.ChipSpec

// PerfPoint is one sample of a performance mesa.
type PerfPoint = oi.PerfPoint

// GF100 is the paper's baseline 40 nm chip specification.
func GF100() ChipSpec { return oi.GF100() }

// PerformanceMesa sweeps buffer-to-compute area ratios (Fig. 9/23).
func PerformanceMesa(c *Curve, macs int64, spec ChipSpec, ratios []float64) []PerfPoint {
	return oi.PerformanceMesa(c, macs, spec, ratios)
}

// OptimalRatio picks the mesa point with peak achieved throughput.
func OptimalRatio(mesa []PerfPoint) (PerfPoint, bool) { return oi.OptimalRatio(mesa) }

// Ratios returns n+1 evenly spaced area ratios in [lo, hi].
func Ratios(lo, hi float64, n int) []float64 { return oi.Ratios(lo, hi, n) }

// LLM case study ----------------------------------------------------------

// LLMConfig describes a transformer building block.
type LLMConfig = llm.Config

// GPT3_6_7B is the paper's Sec. VII target workload.
func GPT3_6_7B() LLMConfig { return llm.GPT3_6_7B() }

// BlockStudy bundles the full-building-block curves (Figs. 21–23).
type BlockStudy = llm.BlockStudy

// NewBlockStudy derives every curve of the LLM case study.
func NewBlockStudy(c LLMConfig, opts Options) (*BlockStudy, error) {
	return llm.NewBlockStudy(c, opts)
}

// Multi-level hierarchies ---------------------------------------------------

// Hierarchy and Level describe a multi-level memory system for the
// Fig. 7-style extrapolation with energy and bandwidth bounds.
type (
	Hierarchy       = hierarchy.Hierarchy
	Level           = hierarchy.Level
	HierarchyReport = hierarchy.Report
)

// AnalyzeHierarchy probes a curve at every level of a hierarchy, yielding
// per-link traffic, energy and bandwidth-time lower bounds.
func AnalyzeHierarchy(c *Curve, h Hierarchy, macs int64) (*HierarchyReport, error) {
	return hierarchy.Analyze(c, h, macs)
}

// A100Like, EdgeLike and TPULike are preset hierarchies.
func A100Like() Hierarchy { return hierarchy.A100Like() }
func EdgeLike() Hierarchy { return hierarchy.EdgeLike() }
func TPULike() Hierarchy  { return hierarchy.TPULike() }

// ThreeLevelResult is the jointly-achievable three-level Snowcat bound.
type ThreeLevelResult = multilevel.Result

// DeriveThreeLevel exhaustively maps a workload onto a three-level
// Snowcat (L1, L2, backing store): every point of its curves is one
// mapping achieving its DRAM and L2 traffic simultaneously, which the
// independent Fig. 7 probes cannot guarantee. The traversal runs on the
// shared parallel engine across all cores; results are identical for any
// worker count.
func DeriveThreeLevel(e *Einsum, l1CapBytes int64) (*ThreeLevelResult, error) {
	return multilevel.Derive(e, l1CapBytes, multilevel.Options{})
}

// Heuristic mappers ---------------------------------------------------------

// RandomSearchCurve samples random Snowcat mappings — valid but loose,
// the paper's argument for exhaustive traversal.
func RandomSearchCurve(e *Einsum, samples int, seed int64) *Curve {
	return search.RandomCurve(e, samples, seed)
}

// HillClimbCurve runs greedy local search under a set of buffer budgets.
func HillClimbCurve(e *Einsum, budgets []int64, evalBudget int, seed int64) *Curve {
	return search.HillClimbCurve(e, budgets, evalBudget, seed)
}

// SearchLooseness quantifies a heuristic curve's gap to the bound.
type SearchLooseness = search.Looseness

// CompareSearch measures how far a heuristic curve sits above the
// exhaustive bound.
func CompareSearch(exhaustive, heuristic *Curve) SearchLooseness {
	return search.Compare(exhaustive, heuristic)
}

// Workload catalog ----------------------------------------------------------

// ConvLayer is a named convolution layer from the model catalog.
type ConvLayer = models.ConvLayer

// ResNet50 and VGG16 return representative CNN layer catalogs.
func ResNet50() []ConvLayer { return models.ResNet50() }
func VGG16() []ConvLayer    { return models.VGG16() }

// BERTBase and BERTLarge return encoder transformer blocks; GPT3_13B and
// GPT3_175B the larger GPT-3 family members.
func BERTBase(seq, batch int64) LLMConfig  { return models.BERTBase(seq, batch) }
func BERTLarge(seq, batch int64) LLMConfig { return models.BERTLarge(seq, batch) }
func GPT3_13B(seq, batch int64) LLMConfig  { return models.GPT3_13B(seq, batch) }
func GPT3_175B(seq, batch int64) LLMConfig { return models.GPT3_175B(seq, batch) }

// Llama2_70B_GQA returns Llama-2-70B's grouped-query attention BMM.
func Llama2_70B_GQA(seq int64) *Einsum { return models.Llama2_70B_GQA(seq) }

// TransformerBlocks lists the catalog's transformer configurations.
func TransformerBlocks() []LLMConfig { return models.TransformerBlocks() }

// Reporting -----------------------------------------------------------------

// ReadCurveCSV parses a saved two-column curve CSV. Curves are portable
// across architectures (Sec. III-B), so deriving once and re-loading into
// later DSE sessions is the intended workflow; Curve also implements
// json.Marshaler/Unmarshaler and io.WriterTo.
func ReadCurveCSV(r io.Reader) (*Curve, error) { return pareto.ReadCSV(r) }

// Series is a named curve for CSV/ASCII output.
type Series = plotting.Series

// WriteCSV, Ascii and SummaryTable render curves as text.
var (
	WriteCSV     = plotting.WriteCSV
	Ascii        = plotting.Ascii
	SummaryTable = plotting.SummaryTable
)

// AsciiOptions controls ASCII chart rendering.
type AsciiOptions = plotting.AsciiOptions
