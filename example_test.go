package orojenesis_test

import (
	"fmt"

	orojenesis "repro"
)

// ExampleAnalyze derives the ski-slope bound for a small GEMM and reads
// the headline quantities off it.
func ExampleAnalyze() {
	g := orojenesis.GEMM("gemm", 64, 64, 64)
	a, err := orojenesis.Analyze(g, orojenesis.Options{Workers: 1})
	if err != nil {
		panic(err)
	}
	acc, _ := a.Curve.AccessesAt(a.MaxEffectualBytes)
	fmt.Println("accesses at max effectual == algorithmic min:", acc == a.AlgorithmicMinBytes)
	fmt.Printf("peak OI: %.2f MACs/element\n", a.PeakOI)
	// Output:
	// accesses at max effectual == algorithmic min: true
	// peak OI: 21.33 MACs/element
}

// ExampleParseEinsum builds a workload from the paper's notation.
func ExampleParseEinsum() {
	e, err := orojenesis.ParseEinsum("B[m,n] = A[m,k] * W[k,n] {M=128, K=64, N=32}")
	if err != nil {
		panic(err)
	}
	fmt.Println("MACs:", e.MACs())
	fmt.Println("algorithmic minimum bytes:", e.AlgorithmicMinBytes())
	// Output:
	// MACs: 262144
	// algorithmic minimum bytes: 28672
}

// ExampleTiledFusion bounds a fused two-GEMM chain: the floor is the
// fused algorithmic minimum, below what unfused execution can ever reach.
func ExampleTiledFusion() {
	chain := orojenesis.MustChain("pair", 64,
		orojenesis.GEMMOp("g0", 64, 16, 64),
		orojenesis.GEMMOp("g1", 64, 64, 16),
	)
	curve, err := orojenesis.TiledFusion(chain)
	if err != nil {
		panic(err)
	}
	fmt.Println("fused floor == fused algo min:",
		curve.MinAccessBytes() == chain.FusedAlgoMinBytes())
	fmt.Println("beats unfused algo min:",
		curve.MinAccessBytes() < chain.UnfusedAlgoMinBytes())
	// Output:
	// fused floor == fused algo min: true
	// beats unfused algo min: true
}

// ExampleCurve_Gap0 shows the Gap 0 query: attainable accesses relative
// to the algorithmic minimum at a given capacity.
func ExampleCurve_Gap0() {
	g := orojenesis.GEMM("gemm", 256, 256, 256)
	a, err := orojenesis.Analyze(g, orojenesis.Options{Workers: 1})
	if err != nil {
		panic(err)
	}
	gap, ok := a.Curve.Gap0(a.Curve.MaxEffectualBufferBytes())
	fmt.Printf("gap0 at max effectual: %.1f (feasible=%v)\n", gap, ok)
	// Output:
	// gap0 at max effectual: 1.0 (feasible=true)
}

// ExampleAnalyzeHierarchy extrapolates one curve to a multi-level memory
// system with per-link traffic and energy lower bounds.
func ExampleAnalyzeHierarchy() {
	g := orojenesis.GEMM("gemm", 256, 256, 256)
	c := orojenesis.Bound(g, orojenesis.Options{Workers: 1})
	rep, err := orojenesis.AnalyzeHierarchy(c, orojenesis.EdgeLike(), g.MACs())
	if err != nil {
		panic(err)
	}
	fmt.Println("links:", len(rep.Links))
	fmt.Println("inner link carries more traffic:",
		rep.Links[0].AccessBytes >= rep.Links[1].AccessBytes)
	// Output:
	// links: 2
	// inner link carries more traffic: true
}
