# Tier-1 verification plus the race-detector pass over the packages with
# concurrent traversal code.

RACE_PKGS := ./internal/bound ./internal/pareto ./internal/fusion \
             ./internal/traverse ./internal/mapping \
             ./internal/multilevel ./internal/simba

.PHONY: all vet build test race ci

all: ci

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race $(RACE_PKGS)

ci: vet build test race
