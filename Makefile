# Tier-1 verification plus the race-detector pass over the packages with
# concurrent traversal code, the fault-injection robustness suite, and the
# documentation gate.

RACE_PKGS := ./internal/bound ./internal/pareto ./internal/fusion \
             ./internal/traverse ./internal/mapping \
             ./internal/multilevel ./internal/simba \
             ./internal/shard ./internal/supervise ./internal/serve \
             ./internal/workload ./internal/fleet ./internal/cliutil \
             ./internal/store

# The fault-injection and supervision suites: every scripted I/O failure,
# kill and cancellation must end in a successful retry or a named,
# resumable error — never a corrupt artifact. Backoffs in these tests are
# already shortened to milliseconds.
ROBUST_PKGS := ./internal/shard ./internal/supervise ./internal/traverse

.PHONY: all vet build test race robust serve fleet chaos store bench-json docs ci

all: ci

vet:
	go vet ./...

# Documentation gate: formatting, vet, and doc-comment coverage (package
# docs everywhere; full exported-identifier docs in the core packages —
# see internal/tools/doccheck).
docs:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	go vet ./...
	go run ./internal/tools/doccheck

build:
	go build ./...

test:
	go test ./...

race:
	go test -race $(RACE_PKGS)

robust:
	go test -race -count=1 $(ROBUST_PKGS)

# The derivation-server suite under the race detector: deadlines,
# cache-stampede single-flight, saturation shedding, panic containment,
# drain, and kill-and-resume through the spool directory.
serve:
	go test -race -count=1 ./internal/serve

# The distributed-fleet suite under the race detector: coordinator
# dispatch and allocation, bounded retries with retry-elsewhere, digest
# quarantine, speculative re-execution, kill-a-worker and
# kill-the-coordinator parity, and degraded merges (see
# docs/fleet-protocol.md).
fleet:
	go test -race -count=1 ./internal/fleet

# The transport-chaos robustness matrix under the race detector: scripted
# hangs, connection refusals, mid-body partitions, 5xx flaps, slow drips
# and Retry-After storms injected per worker (internal/fleet/chaos); every
# fault class must end in a byte-identical merge or a correctly annotated
# degraded envelope, open breakers must shed load, and faster workers
# must receive more shards (docs/fleet-protocol.md, "Health, membership
# & breakers").
chaos:
	go test -race -count=1 -run '^TestChaos' ./internal/fleet

# The durable curve-store suite under the race detector: checksummed
# content-addressed persistence, the storage fault matrix (torn writes,
# kill-mid-write, zeroed tails, flipped digests, stale engines, ENOSPC,
# concurrent writers), quarantine-and-re-derive, LRU GC, restart warmth
# and the server/warmer shared-directory paths (docs/curve-store.md).
store:
	go test -race -count=1 ./internal/store
	go test -race -count=1 ./internal/cliutil -run 'Store|Warm'
	go test -race -count=1 ./internal/serve -run 'Store|Restart|Warmer|Corrupt|Degraded206'

# Machine-readable benchmark artifact: the paper-figure benchmark suite
# (root package) parsed into BENCH_PR9.json by internal/tools/benchjson,
# followed by a delta report against the previous PR's artifact so
# regressions are visible in the CI log. BENCHTIME=1x (the default) runs
# each benchmark once — a smoke-level artifact for CI; raise it (e.g.
# BENCHTIME=2s) for stable numbers.
BENCHTIME ?= 1x
BENCH ?= .

bench-json:
	go test -run '^$$' -bench '$(BENCH)' -benchtime $(BENCHTIME) -benchmem . \
		| go run ./internal/tools/benchjson -out BENCH_PR10.json
	@if [ -f BENCH_PR9.json ]; then \
		go run ./internal/tools/benchjson -delta BENCH_PR9.json BENCH_PR10.json; \
	fi

ci: vet build test race robust serve fleet chaos store docs
