# Tier-1 verification plus the race-detector pass over the packages with
# concurrent traversal code and the documentation gate.

RACE_PKGS := ./internal/bound ./internal/pareto ./internal/fusion \
             ./internal/traverse ./internal/mapping \
             ./internal/multilevel ./internal/simba

.PHONY: all vet build test race docs ci

all: ci

vet:
	go vet ./...

# Documentation gate: formatting, vet, and doc-comment coverage (package
# docs everywhere; full exported-identifier docs in the core packages —
# see internal/tools/doccheck).
docs:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	go vet ./...
	go run ./internal/tools/doccheck

build:
	go build ./...

test:
	go test ./...

race:
	go test -race $(RACE_PKGS)

ci: vet build test race docs
